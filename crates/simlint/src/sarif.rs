//! SARIF 2.1.0 writer.
//!
//! SARIF (Static Analysis Results Interchange Format) is the lingua
//! franca of code-scanning UIs: one `simlint.sarif` artifact lets any
//! SARIF viewer (or a code-hosting annotation bot) render findings
//! inline on the diff, without knowing anything about simlint. The
//! writer emits the minimal valid subset of SARIF 2.1.0:
//!
//! * one `run` with a `tool.driver` declaring every registered rule, so
//!   viewers can show rule metadata next to each result;
//! * one `result` per finding with a `physicalLocation` and the
//!   structural fingerprint under `partialFingerprints` (key
//!   `simlintItemHash/v1`), which SARIF-aware ratchets use for the same
//!   new-vs-known matching `--baseline` does natively;
//! * suppressed findings included as level-`note` results carrying a
//!   `suppressions` entry (`kind: "inSource"`), because an audit trail
//!   that omits what was silenced invites silent rot.
//!
//! Rendering is hand-rolled string building (the crate is
//! dependency-free); the unit tests parse the output back with
//! [`crate::json`] to prove the document is structurally valid, not
//! just eyeballed.

use crate::report::{json_str, Finding, Report};
use crate::rules::RULES;

/// The `partialFingerprints` key for simlint's structural item hash.
pub const FINGERPRINT_KEY: &str = "simlintItemHash/v1";

/// Renders one result object. `suppressed_why` switches between an
/// active `error` result and a suppressed `note` one.
fn render_result(f: &Finding, suppressed_why: Option<&str>, is_last: bool) -> String {
    let rule_index = RULES
        .iter()
        .position(|r| r.name == f.rule)
        .map_or(-1i64, |i| i as i64);
    let mut out = String::from("        {\n");
    out.push_str(&format!("          \"ruleId\": {},\n", json_str(f.rule)));
    out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
    out.push_str(&format!(
        "          \"level\": {},\n",
        json_str(if suppressed_why.is_some() {
            "note"
        } else {
            "error"
        })
    ));
    out.push_str(&format!(
        "          \"message\": {{\"text\": {}}},\n",
        json_str(&f.message)
    ));
    out.push_str(&format!(
        "          \"locations\": [{{\"physicalLocation\": {{\
         \"artifactLocation\": {{\"uri\": {}}}, \
         \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}],\n",
        json_str(&f.path),
        f.line,
        f.col
    ));
    if let Some(why) = suppressed_why {
        out.push_str(&format!(
            "          \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}],\n",
            json_str(why)
        ));
    }
    out.push_str(&format!(
        "          \"partialFingerprints\": {{{}: {}}}\n",
        json_str(FINGERPRINT_KEY),
        json_str(&format!("{:016x}", f.fingerprint))
    ));
    out.push_str(if is_last {
        "        }\n"
    } else {
        "        },\n"
    });
    out
}

/// Renders the whole report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"mlb-simlint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/mlb-simlint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"fullDescription\": {{\"text\": {}}}}}{}\n",
            json_str(r.name),
            json_str(r.summary),
            json_str(r.rationale),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = report.findings.len() + report.suppressed.len();
    let mut emitted = 0usize;
    for f in &report.findings {
        emitted += 1;
        out.push_str(&render_result(f, None, emitted == total));
    }
    for (f, why) in &report.suppressed {
        emitted += 1;
        out.push_str(&render_result(f, Some(why), emitted == total));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    fn sample_report() -> Report {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "no-wall-clock",
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "Instant::now() in simulation code".into(),
            fingerprint: 0x1234_5678_9abc_def0,
        });
        r.suppressed.push((
            Finding {
                rule: "panic-hygiene",
                path: "crates/x/src/sim.rs".into(),
                line: 7,
                col: 1,
                message: "unwrap in hot path".into(),
                fingerprint: 0xffff,
            },
            "a live RequestId always maps to a request".to_owned(),
        ));
        r.files_scanned.push("crates/x/src/lib.rs".into());
        r
    }

    #[test]
    fn document_is_valid_sarif_2_1_0_shape() {
        let doc = json::parse(&render_sarif(&sample_report())).expect("SARIF must be valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let runs = doc.get("runs").and_then(Value::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("mlb-simlint")
        );
        let rules = driver.get("rules").and_then(Value::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        for (meta, rule) in RULES.iter().zip(rules) {
            assert_eq!(rule.get("id").and_then(Value::as_str), Some(meta.name));
        }
    }

    #[test]
    fn results_carry_location_fingerprint_and_suppression() {
        let doc = json::parse(&render_sarif(&sample_report())).unwrap();
        let runs = doc.get("runs").and_then(Value::as_arr).unwrap();
        let results = runs[0].get("results").and_then(Value::as_arr).unwrap();
        assert_eq!(results.len(), 2);

        let active = &results[0];
        assert_eq!(
            active.get("ruleId").and_then(Value::as_str),
            Some("no-wall-clock")
        );
        assert_eq!(active.get("level").and_then(Value::as_str), Some("error"));
        let loc = active.get("locations").and_then(Value::as_arr).unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/x/src/lib.rs")
        );
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_num),
            Some(3.0)
        );
        assert_eq!(
            active
                .get("partialFingerprints")
                .and_then(|p| p.get(FINGERPRINT_KEY))
                .and_then(Value::as_str),
            Some("123456789abcdef0")
        );
        assert!(active.get("suppressions").is_none());

        let silenced = &results[1];
        assert_eq!(silenced.get("level").and_then(Value::as_str), Some("note"));
        let sup = silenced
            .get("suppressions")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(sup[0].get("kind").and_then(Value::as_str), Some("inSource"));
        assert!(sup[0]
            .get("justification")
            .and_then(Value::as_str)
            .is_some_and(|j| j.contains("RequestId")));
    }

    #[test]
    fn empty_report_is_still_valid() {
        let doc = json::parse(&render_sarif(&Report::default())).unwrap();
        let runs = doc.get("runs").and_then(Value::as_arr).unwrap();
        assert_eq!(
            runs[0]
                .get("results")
                .and_then(Value::as_arr)
                .map(|r| r.len()),
            Some(0)
        );
    }
}
