//! Findings, suppressions and report rendering.

use std::fmt;

use crate::lexer::Token;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's registered name (e.g. `"no-hash-order"`).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Structural fingerprint of the enclosing item (FNV-1a over the
    /// rule, the path, and the item's non-comment token stream) — the
    /// identity `--baseline` matches on. Line numbers deliberately do
    /// not participate, so findings survive unrelated edits above them.
    /// Zero until [`crate::lint_workspace`] fills it in.
    pub fingerprint: u64,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// One parsed `// simlint::allow(<rule>[, <rule>…]): <justification>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rules the comment suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification text after the colon.
    pub justification: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// The marker that introduces a suppression inside a comment.
pub const ALLOW_MARKER: &str = "simlint::allow";

/// Extracts suppressions from a file's comment tokens. Only comments
/// that *begin* with the marker count (doc comments and prose that
/// merely mention the syntax are ignored). A marker comment that is
/// malformed (unparsable rule list, or a missing/empty justification)
/// yields an error entry carrying a [`Finding`]-ready message, because a
/// suppression without a written reason is itself a hygiene violation.
pub fn parse_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<(u32, u32, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        // Only a comment that *is* a suppression counts: doc comments and
        // prose that merely mention the syntax (they start with `/`, `!`
        // or other text) are ignored.
        let trimmed = t.text.trim_start();
        let Some(rest) = trimmed.strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        let parsed = (|| -> Result<Suppression, String> {
            let rest = rest.trim_start();
            let inner = rest
                .strip_prefix('(')
                .ok_or("expected `(` after simlint::allow")?;
            let close = inner.find(')').ok_or("unclosed `(` in simlint::allow")?;
            let rules: Vec<String> = inner[..close]
                .split(',')
                .map(|r| r.trim().to_owned())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                return Err("simlint::allow names no rule".to_owned());
            }
            let after = inner[close + 1..].trim_start();
            let justification = after
                .strip_prefix(':')
                .map(str::trim)
                .filter(|j| !j.is_empty())
                .ok_or(
                    "suppression lacks a justification (`simlint::allow(rule): <why>` is required)",
                )?;
            Ok(Suppression {
                rules,
                justification: justification.to_owned(),
                line: t.line,
            })
        })();
        match parsed {
            Ok(s) => ok.push(s),
            Err(msg) => bad.push((t.line, t.col, msg.to_string())),
        }
    }
    (ok, bad)
}

/// A full lint run: what was found, what was suppressed, what was seen.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings — these fail the build.
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified suppression (kept for `--json`
    /// audits: every suppression stays visible).
    pub suppressed: Vec<(Finding, String)>,
    /// Files scanned, workspace-relative.
    pub files_scanned: Vec<String>,
    /// Function names the interprocedural summaries excluded because
    /// same-named definitions disagree on arity. Those call sites fall
    /// back to "no facts" — surfaced so silently-shrinking coverage is
    /// visible in every report, not just in a debugger.
    pub dropped_symbols: usize,
}

impl Report {
    /// Whether the run is clean (nothing unsuppressed).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings for stable, diff-friendly output.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.path.clone(), f.line, f.col, f.rule);
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(|(f, _)| key(f));
    }

    /// Human-readable rendering, one `file:line:col: [rule] message` per
    /// finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{f}\n"));
        }
        out.push_str(&format!(
            "simlint: {} file(s), {} finding(s), {} suppressed\n",
            self.files_scanned.len(),
            self.findings.len(),
            self.suppressed.len()
        ));
        if self.dropped_symbols > 0 {
            out.push_str(&format!(
                "simlint: {} symbol(s) excluded from interprocedural summaries \
                 (same-named definitions with conflicting arities)\n",
                self.dropped_symbols
            ));
        }
        out
    }

    /// Machine-readable rendering (stable field order, hand-rolled so the
    /// crate stays dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n",
            self.files_scanned.len()
        ));
        out.push_str(&format!(
            "  \"dropped_symbols\": {},\n",
            self.dropped_symbols
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \
                 \"fingerprint\": \"{:016x}\"}}{}\n",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message),
                f.fingerprint,
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        for (i, (f, why)) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"justification\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(why),
                if i + 1 < self.suppressed.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"clean\": {}\n", self.is_clean()));
        out.push('}');
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_suppression_parses() {
        let toks =
            lex("// simlint::allow(no-hash-order, panic-hygiene): keyed probe only\nlet x = 1;");
        let (ok, bad) = parse_suppressions(&toks);
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rules, vec!["no-hash-order", "panic-hygiene"]);
        assert_eq!(ok[0].justification, "keyed probe only");
        assert_eq!(ok[0].line, 1);
    }

    #[test]
    fn suppression_without_justification_is_flagged() {
        for src in [
            "// simlint::allow(no-hash-order)",
            "// simlint::allow(no-hash-order):",
            "// simlint::allow(no-hash-order):   ",
            "// simlint::allow(): because",
        ] {
            let (ok, bad) = parse_suppressions(&lex(src));
            assert!(ok.is_empty(), "{src} should not parse");
            assert_eq!(bad.len(), 1, "{src} should be flagged");
        }
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (ok, bad) = parse_suppressions(&lex("// nothing to see\n/* here either */"));
        assert!(ok.is_empty() && bad.is_empty());
    }

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "no-wall-clock",
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "say \"no\"".into(),
            fingerprint: 0xabcd,
        });
        r.files_scanned.push("crates/x/src/lib.rs".into());
        let j = r.render_json();
        assert!(j.contains("\"say \\\"no\\\"\""));
        assert!(j.contains("\"clean\": false"));
    }
}
