//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The workspace builds with no registry access, so `syn`/`proc-macro2`
//! are off the table; fortunately none of the simlint rules need a full
//! parse. What they *do* need is a token stream that never confuses
//! code with non-code: a `HashMap` inside a string literal or a doc
//! comment must not trigger `no-hash-order`, and a suppression comment
//! must be recognized wherever rustfmt puts it. The lexer therefore
//! handles the entire literal/comment surface of the language — nested
//! block comments, raw strings with arbitrary hash fences, byte and raw
//! byte strings, char-vs-lifetime disambiguation, raw identifiers —
//! while treating everything between literals as identifiers, numbers
//! and single-character punctuation.
//!
//! Every token carries its 1-based line and column so findings map to
//! `file:line:col` diagnostics.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `in`, `HashMap`, `r#type`, ...).
    Ident,
    /// A `// ...` comment (doc comments included), text without `//`.
    LineComment,
    /// A `/* ... */` comment (nesting handled), text without fences.
    BlockComment,
    /// Any string-ish literal: `"..."`, `r#"..."#`, `b"..."`, `br"..."`.
    Str,
    /// A character or byte literal: `'a'`, `b'\n'`.
    Char,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// A numeric literal, suffix included (`1_000u64`, `0xff`, `1.5e3`).
    Number,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Identifier/keyword text, or comment body. Empty for literals and
    /// punctuation (no rule needs literal contents).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    peeked: Option<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    /// Peeks one character past [`Cursor::peek`] without consuming.
    fn peek2(&mut self) -> Option<char> {
        self.peek();
        self.chars.clone().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peeked.take().or_else(|| self.chars.next())?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into a token stream. The lexer never fails: malformed
/// input (say, an unterminated string) simply ends the current token at
/// end of file, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            match cur.peek2() {
                Some('/') => {
                    cur.bump();
                    cur.bump();
                    let mut text = String::new();
                    while let Some(n) = cur.peek() {
                        if n == '\n' {
                            break;
                        }
                        text.push(n);
                        cur.bump();
                    }
                    out.push(Token {
                        kind: TokenKind::LineComment,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                Some('*') => {
                    cur.bump();
                    cur.bump();
                    let mut depth = 1u32;
                    let mut text = String::new();
                    while depth > 0 {
                        match (cur.peek(), cur.peek2()) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                cur.bump();
                                cur.bump();
                                text.push_str("/*");
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                cur.bump();
                                cur.bump();
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                            }
                            (Some(n), _) => {
                                text.push(n);
                                cur.bump();
                            }
                            (None, _) => break,
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::BlockComment,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                _ => {}
            }
        }
        if c == '"' {
            cur.bump();
            lex_string_body(&mut cur);
            out.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            cur.bump();
            // Lifetime iff the next char starts an identifier and the one
            // after it does not close a char literal ('a' is a char, 'ab
            // and 'static are lifetimes, '_' is the char underscore).
            let next = cur.peek();
            let after = cur.peek2();
            let is_lifetime =
                matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
            if is_lifetime {
                let mut text = String::new();
                while let Some(n) = cur.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                // Char literal: consume up to the closing quote, honoring
                // escapes.
                while let Some(n) = cur.bump() {
                    match n {
                        '\\' => {
                            cur.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                out.push(Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line,
                    col,
                });
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(n) = cur.peek() {
                if n.is_alphanumeric() || n == '_' {
                    text.push(n);
                    cur.bump();
                } else if n == '.' {
                    // `1.5` continues the number; `0..n` does not.
                    match cur.peek2() {
                        Some(d) if d.is_ascii_digit() && !text.contains('.') => {
                            text.push(n);
                            cur.bump();
                        }
                        _ => break,
                    }
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: TokenKind::Number,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            // Raw strings / byte strings / raw identifiers first: the
            // prefixes r, b, br, rb#… look like identifier starts.
            if let Some(tok) = lex_raw_or_byte(&mut cur, line, col) {
                out.push(tok);
                continue;
            }
            let mut text = String::new();
            while let Some(n) = cur.peek() {
                if n.is_alphanumeric() || n == '_' {
                    text.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        cur.bump();
        out.push(Token {
            kind: TokenKind::Punct(c),
            text: String::new(),
            line,
            col,
        });
    }
    out
}

/// Consumes a plain `"..."` body (opening quote already consumed).
fn lex_string_body(cur: &mut Cursor<'_>) {
    while let Some(n) = cur.bump() {
        match n {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string `r##"..."##` body: `hashes` is the fence width
/// (opening `r`/hashes/quote already consumed).
fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: u32) {
    'outer: while let Some(n) = cur.bump() {
        if n != '"' {
            continue;
        }
        let mut seen = 0;
        while seen < hashes {
            if cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            } else {
                continue 'outer;
            }
        }
        return;
    }
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br"…"`/`rb` forms and
/// raw identifiers `r#ident` at the cursor. Returns `None` when the text
/// is an ordinary identifier (cursor untouched in that case).
fn lex_raw_or_byte(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Token> {
    let c = cur.peek()?;
    if c != 'r' && c != 'b' {
        return None;
    }
    // Look ahead without consuming: clone the underlying iterator. The
    // window must span the whole `r###…` hash run plus the deciding
    // quote, so it extends while hashes keep coming (rustc caps raw
    // strings at 255 hashes; 300 bounds pathological input).
    let mut ahead = {
        let mut v = Vec::new();
        if let Some(p) = cur.peeked {
            v.push(p);
        }
        for ch in cur.chars.clone() {
            v.push(ch);
            if (v.len() >= 3 && ch != '#') || v.len() > 300 {
                break;
            }
        }
        v
    };
    ahead.push('\0'); // padding so indexing is safe
    let second = ahead.get(1).copied().unwrap_or('\0');
    match (c, second) {
        ('b', '\'') => {
            cur.bump(); // b
            cur.bump(); // '
            while let Some(n) = cur.bump() {
                match n {
                    '\\' => {
                        cur.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            Some(Token {
                kind: TokenKind::Char,
                text: String::new(),
                line,
                col,
            })
        }
        ('b', '"') => {
            cur.bump();
            cur.bump();
            lex_string_body(cur);
            Some(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line,
                col,
            })
        }
        ('r', '"') => {
            cur.bump();
            cur.bump();
            lex_raw_string_body(cur, 0);
            Some(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line,
                col,
            })
        }
        ('r', '#') | ('b', 'r') | ('r', 'b') => {
            // Distinguish r#"…" (raw string) from r#ident (raw ident) and
            // from a plain identifier starting with these letters (rb_x).
            let prefix_len = if second == '#' { 1 } else { 2 };
            let mut i = prefix_len;
            let mut hashes = 0u32;
            while ahead.get(i).copied() == Some('#') {
                hashes += 1;
                i += 1;
            }
            if ahead.get(i).copied() == Some('"') {
                // Only a limited lookahead window is cloned above; re-walk
                // with real consumption now that the shape is confirmed.
                for _ in 0..prefix_len {
                    cur.bump();
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                cur.bump(); // opening quote
                lex_raw_string_body(cur, hashes);
                return Some(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            if second == '#' && hashes == 1 {
                // r#ident — lex as an identifier without the prefix.
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(n) = cur.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                return Some(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn words_in_strings_and_comments_are_not_idents() {
        let src = r##"
            let x = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            let y = r#"HashMap raw "quoted" here"#;
            let z = b"HashMap bytes";
            real_ident
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_owned()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_owned()));
    }

    #[test]
    fn comments_keep_text_and_position() {
        let toks = lex("let a = 1; // simlint::allow(rule): why\nnext");
        let c = toks.iter().find(|t| t.is_comment()).unwrap();
        assert_eq!(c.text, " simlint::allow(rule): why");
        assert_eq!(c.line, 1);
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 2);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 { let f = 1.5e3; let h = 0xff_u32; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3", "0xff_u32"]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let ids = idents("let r#type = 1; let rb_x = 2;");
        assert!(ids.contains(&"type".to_owned()));
        assert!(ids.contains(&"rb_x".to_owned()));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let toks = lex("Instant::now()");
        assert!(toks[0].is_ident("Instant"));
        assert!(toks[1].is_punct(':'));
        assert!(toks[2].is_punct(':'));
        assert!(toks[3].is_ident("now"));
    }
}
