//! Cross-file call graph and per-function taint summaries.
//!
//! This is the interprocedural layer on top of `dataflow.rs`. For every
//! function defined in the flow-analyzed crates it computes a
//! [`FnSummary`] describing how values move *through* the function:
//! which parameters flow to the return value, which parameters reach an
//! event-scheduling sink inside the body (directly or via further
//! calls), and whether the return value is itself a nondeterminism
//! source or a hash-ordered collection. `dataflow.rs` then consumes the
//! summaries at call sites, so a taint laundered through a helper —
//! `sched.schedule(hop1(stamp), 0)` where `hop1` forwards to `hop2`
//! which returns its argument — is still reported at the one call site
//! where the tainted value actually enters the flow.
//!
//! Like the rest of simlint's symbol layer, summaries are keyed by
//! *name*, not by resolved path: the hand-rolled parser has no type
//! information, so `Wheel::push` and `Vec::push` are the same node.
//! Names defined with conflicting arities are excluded outright
//! (callers fall back to the conservative intra-procedural behavior),
//! and same-arity same-name definitions are merged by union, which
//! over-approximates but never misses a flow.
//!
//! Recursion and mutual calls terminate because summaries are computed
//! as a fixpoint over the call graph's strongly connected components:
//! Tarjan's algorithm (iterative, so adversarial call-chain depth
//! cannot overflow the stack) emits SCCs callees-first; single
//! functions are summarized once, and each cycle starts from the empty
//! summary and iterates until stable. Every summary field only ever
//! grows (bit-masks union, flags latch), so the fixpoint is reached in
//! a bounded number of rounds.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_block_exprs, ExprKind, File, Func, Item, ItemKind};
use crate::dataflow::{summarize_fn, TaintKind};
use crate::symbols::{Symbols, Unit, UnitAnnotations};

/// How values flow through one named function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnSummary {
    /// Declared parameter count, `self` included.
    pub arity: usize,
    /// The first parameter is a `self` receiver.
    pub has_self: bool,
    /// Bitmask of parameters (bit *i* = param *i*, capped at 31) whose
    /// value can reach the function's return value.
    pub param_to_return: u32,
    /// Bitmask of parameters whose value can reach a scheduling sink
    /// (`schedule`/`push`/`SimTime` construction) inside the body,
    /// transitively through further calls.
    pub param_to_sink: u32,
    /// The return value originates from a nondeterminism source inside
    /// the body (wall clock, ambient RNG, hash-order iteration).
    pub returns_taint: Option<TaintKind>,
    /// The return value is (or contains) a hash-ordered collection.
    pub returns_hashy: bool,
    /// The declared time unit of the returned value, when every return
    /// path in the body agrees (a `_ms` local flowing out of a
    /// suffix-less helper). A unit in the function's own name wins at
    /// call sites; this fills the gap when there is none.
    pub returns_unit: Option<Unit>,
}

impl FnSummary {
    fn empty(arity: usize, has_self: bool) -> FnSummary {
        FnSummary {
            arity,
            has_self,
            param_to_return: 0,
            param_to_sink: 0,
            returns_taint: None,
            returns_hashy: false,
            returns_unit: None,
        }
    }

    /// Union of two same-name definitions (or of an old and a recomputed
    /// iterate): the merge only grows, which is what makes the SCC
    /// fixpoint terminate.
    fn merge(self, other: FnSummary) -> FnSummary {
        FnSummary {
            arity: self.arity,
            has_self: self.has_self || other.has_self,
            param_to_return: self.param_to_return | other.param_to_return,
            param_to_sink: self.param_to_sink | other.param_to_sink,
            returns_taint: self.returns_taint.or(other.returns_taint),
            returns_hashy: self.returns_hashy || other.returns_hashy,
            // First-wins keeps the merge monotone; a genuine per-body
            // disagreement was already resolved to `None` in
            // `summarize_fn`.
            returns_unit: self.returns_unit.or(other.returns_unit),
        }
    }
}

/// Name-keyed function summaries. `None` marks a name excluded for
/// conflicting arities (mirroring `Symbols::fn_param_units`).
#[derive(Debug, Default)]
pub struct Summaries {
    map: BTreeMap<String, Option<FnSummary>>,
}

impl Summaries {
    /// A table with no summaries at all; callers degrade to the
    /// conservative intra-procedural behavior everywhere.
    pub fn empty() -> Summaries {
        Summaries::default()
    }

    /// The summary for `name`, if one exists and is unambiguous.
    pub fn get(&self, name: &str) -> Option<FnSummary> {
        self.map.get(name).copied().flatten()
    }

    /// Number of summarized (non-excluded) names.
    pub fn len(&self) -> usize {
        self.map.values().filter(|s| s.is_some()).count()
    }

    /// `true` if nothing was summarized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of names excluded for conflicting arities. Exclusion is
    /// *correct* (callers degrade to intra-procedural analysis) but
    /// used to be silent; surfacing the count in the report keeps a
    /// creeping loss of interprocedural coverage visible.
    pub fn dropped(&self) -> usize {
        self.map.values().filter(|s| s.is_none()).count()
    }
}

/// Builds summaries for every function defined in `files` (skipping
/// `#[cfg(test)]` modules, like the symbol table does).
pub fn build(files: &[(&File, &UnitAnnotations)], symbols: &Symbols) -> Summaries {
    // 1. Collect definitions: name → [(func, file's annotations)].
    let mut defs: BTreeMap<String, Vec<(&Func, &UnitAnnotations)>> = BTreeMap::new();
    for (file, anns) in files {
        let mut fns = Vec::new();
        collect_fns(&file.items, &mut fns);
        for f in fns {
            defs.entry(f.name.clone()).or_default().push((f, anns));
        }
    }

    // 2. Exclude names whose definitions disagree on arity: a bitmask
    //    indexed by parameter position is meaningless across them, and
    //    deciding exclusion *before* the fixpoint keeps it monotone.
    let mut summaries = Summaries::default();
    let names: Vec<&String> = defs
        .keys()
        .filter(|name| {
            let arities: BTreeSet<usize> =
                defs[*name].iter().map(|(f, _)| f.params.len()).collect();
            if arities.len() > 1 {
                summaries.map.insert((**name).clone(), None);
                false
            } else {
                true
            }
        })
        .collect();
    let index_of: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // 3. Call edges at name granularity: every `name(..)` path call and
    //    `.name(..)` method call inside a body whose name we define.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (i, name) in names.iter().enumerate() {
        let mut callees = BTreeSet::new();
        for (f, _) in &defs[*name] {
            let Some(body) = &f.body else { continue };
            walk_block_exprs(body, &mut |e| {
                let called = match &e.kind {
                    ExprKind::Call { callee, .. } => match &callee.kind {
                        ExprKind::Path(segs) => segs.last().map(String::as_str),
                        _ => None,
                    },
                    ExprKind::MethodCall { method, .. } => Some(method.as_str()),
                    _ => None,
                };
                if let Some(c) = called {
                    if let Some(&j) = index_of.get(c) {
                        callees.insert(j);
                    }
                }
            });
        }
        adj[i] = callees.into_iter().collect();
    }

    // 4. SCC condensation, emitted callees-first by construction.
    let sccs = tarjan_sccs(&adj);

    // 5. Summarize in reverse topological order; iterate within each
    //    SCC from the empty summary until stable.
    for scc in sccs {
        for &ni in &scc {
            let (f, _) = defs[names[ni]][0];
            summaries.map.insert(
                names[ni].clone(),
                Some(FnSummary::empty(
                    f.params.len(),
                    f.params
                        .first()
                        .is_some_and(|p| p.name.as_deref() == Some("self")),
                )),
            );
        }
        // Bit-masks and flags only grow, so each round either changes a
        // summary or is the last; the bound is a safety net, not a
        // budget that real code approaches.
        for _round in 0..64 {
            let mut changed = false;
            for &ni in &scc {
                let name = names[ni];
                let mut computed: Option<FnSummary> = None;
                for (f, anns) in &defs[name] {
                    let s = summarize_fn(f, symbols, anns, &summaries);
                    computed = Some(match computed {
                        Some(m) => m.merge(s),
                        None => s,
                    });
                }
                let old = summaries.get(name);
                let new = computed.map(|c| match old {
                    Some(o) => o.merge(c),
                    None => c,
                });
                if new != old {
                    changed = true;
                    summaries.map.insert(name.clone(), new);
                }
            }
            if !changed {
                break;
            }
        }
    }
    summaries
}

/// Collects every function definition outside `#[cfg(test)]` modules.
fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<&'a Func>) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => out.push(f),
            ItemKind::Impl(imp) => collect_fns(&imp.items, out),
            ItemKind::Mod(m) if !m.cfg_test => collect_fns(&m.items, out),
            _ => {}
        }
    }
}

/// Iterative Tarjan: returns SCCs in reverse topological order of the
/// condensation (every SCC appears after all SCCs it calls into have
/// been emitted), which is exactly the summarization order we need.
/// Shared with the write-effect engine (`effects.rs`), which runs the
/// same bottom-up fixpoint over its own per-function summaries.
pub(crate) fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index: Vec<Option<u32>> = vec![None; n];
    let mut low: Vec<u32> = vec![0; n];
    let mut on_stack: Vec<bool> = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next: u32 = 0;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start].is_some() {
            continue;
        }
        // Explicit DFS frames: (node, next-child cursor).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(frame) = frames.last_mut() {
            let (v, ci) = *frame;
            if ci == 0 && index[v].is_none() {
                index[v] = Some(next);
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                frame.1 += 1;
                let w = adj[v][ci];
                if index[w].is_none() {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w].expect("visited node has an index"));
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if Some(low[v]) == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC root is on the Tarjan stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::symbols::parse_unit_annotations;

    fn summarize(src: &str) -> Summaries {
        let toks = lex(src);
        let file = parse_file(&toks);
        assert_eq!(file.recovered_skips, 0, "test source must parse");
        let (anns, bad) = parse_unit_annotations(&toks);
        assert!(bad.is_empty(), "{bad:?}");
        let symbols = Symbols::build(&[(&file, &anns)]);
        build(&[(&file, &anns)], &symbols)
    }

    #[test]
    fn identity_fn_maps_param_to_return() {
        let s = summarize("pub fn id(v: u64) -> u64 { v }");
        let sum = s.get("id").unwrap();
        assert_eq!(sum.param_to_return, 1);
        assert_eq!(sum.param_to_sink, 0);
    }

    #[test]
    fn two_hop_forwarding_composes() {
        let s = summarize(
            "pub fn hop2(v: u64) -> u64 { v }\n\
             pub fn hop1(v: u64) -> u64 { hop2(v) }",
        );
        assert_eq!(s.get("hop1").unwrap().param_to_return, 1);
    }

    #[test]
    fn sink_reaching_param_is_recorded_transitively() {
        let s = summarize(
            "pub fn inner(sched: &mut S, t: u64) { sched.schedule(t, 0); }\n\
             pub fn outer(sched: &mut S, t: u64) { inner(sched, t); }",
        );
        assert_eq!(s.get("inner").unwrap().param_to_sink, 0b10);
        assert_eq!(s.get("outer").unwrap().param_to_sink, 0b10);
    }

    #[test]
    fn source_in_body_marks_return_tainted() {
        let s = summarize("pub fn stamp() -> u64 { Instant::now() }");
        assert_eq!(
            s.get("stamp").unwrap().returns_taint,
            Some(TaintKind::WallClock)
        );
    }

    #[test]
    fn recursion_and_mutual_calls_terminate() {
        let s = summarize(
            "pub fn even(n: u64) -> bool { if n == 0 { true } else { odd(n - 1) } }\n\
             pub fn odd(n: u64) -> bool { if n == 0 { false } else { even(n - 1) } }\n\
             pub fn rec(v: u64) -> u64 { if v > 1 { rec(v) } else { v } }",
        );
        assert_eq!(s.get("rec").unwrap().param_to_return, 1);
        assert!(s.get("even").is_some());
    }

    #[test]
    fn conflicting_arities_are_excluded_and_counted() {
        let s = summarize(
            "pub fn f(a: u64) -> u64 { a }\n\
             pub mod inner { pub fn f(a: u64, b: u64) -> u64 { a + b } }\n\
             pub fn g(a: u64) -> u64 { a }",
        );
        assert!(s.get("f").is_none());
        assert!(s.get("g").is_some());
        assert_eq!(s.dropped(), 1, "the planted conflict must be counted");
    }

    #[test]
    fn return_unit_propagates_from_an_annotated_local() {
        let s = summarize(
            "pub fn current_window() -> u64 { let w_ms: u64 = 50; w_ms }\n\
             pub fn suffixed_ms() -> u64 { 50 }\n\
             pub fn unitless(v: u64) -> u64 { v }",
        );
        assert_eq!(s.get("current_window").unwrap().returns_unit, Some(Unit::Ms));
        assert_eq!(s.get("unitless").unwrap().returns_unit, None);
    }

    #[test]
    fn conflicting_return_units_in_one_body_poison_to_none() {
        let s = summarize(
            "pub fn pick(flag: bool, a_ms: u64, b_us: u64) -> u64 {\n\
                 if flag { return a_ms; }\n\
                 b_us\n\
             }",
        );
        assert_eq!(s.get("pick").unwrap().returns_unit, None);
    }

    #[test]
    fn self_receiver_is_bit_zero() {
        let s = summarize(
            "pub struct W { q: Vec<u64> }\n\
             impl W { pub fn take(&mut self) -> Vec<u64> { self.q.clone() } }",
        );
        let sum = s.get("take").unwrap();
        assert!(sum.has_self);
        assert_eq!(sum.param_to_return & 1, 1);
    }

    #[test]
    fn cfg_test_fns_are_not_summarized() {
        let s = summarize("#[cfg(test)]\nmod tests { pub fn helper(v: u64) -> u64 { v } }");
        assert!(s.get("helper").is_none());
    }
}
