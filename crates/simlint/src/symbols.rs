//! Cross-file symbol table built from the workspace's parsed ASTs.
//!
//! The dataflow rules need a few global facts that no single file can
//! answer: which functions return hash-ordered collections (so a call
//! chain like `self.endpoints().iter()` taints), which struct fields
//! hold them, which enums exist with which variants (match
//! exhaustiveness), and which functions/consts carry a declared time
//! unit in their name (`fn drain_window_us`, `const RETRY_MS`). The
//! table is name-keyed rather than fully path-resolved — the workspace
//! forbids glob imports of colliding names, and when two same-named
//! functions disagree on parameter units the table reports *no* units
//! for that name instead of guessing.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{self, File, Item, ItemKind};

/// A declared time unit, per the workspace naming convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Microseconds (`_us`, `_micros`).
    Us,
    /// Milliseconds (`_ms`, `_millis`).
    Ms,
    /// Seconds (`_secs`).
    Secs,
}

impl Unit {
    /// Human-readable unit name for messages.
    pub fn label(&self) -> &'static str {
        match self {
            Unit::Us => "µs",
            Unit::Ms => "ms",
            Unit::Secs => "s",
        }
    }

    /// Parses a `simlint::unit(...)` argument.
    pub fn from_annotation(s: &str) -> Option<Unit> {
        match s.trim() {
            "us" | "micros" => Some(Unit::Us),
            "ms" | "millis" => Some(Unit::Ms),
            "secs" | "s" => Some(Unit::Secs),
            _ => None,
        }
    }
}

/// Infers a unit from an identifier per the suffix convention. Works
/// for snake_case (`window_ms`) and SCREAMING_CASE (`RETRY_MS`) names,
/// and for the bare words the `SimTime` constructors use as parameter
/// names (`micros`, `millis`, `secs`).
pub fn unit_from_name(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    let l = lower.as_str();
    if l.ends_with("_us") || l.ends_with("_micros") || l == "us" || l == "micros" {
        Some(Unit::Us)
    } else if l.ends_with("_ms") || l.ends_with("_millis") || l == "ms" || l == "millis" {
        Some(Unit::Ms)
    } else if l.ends_with("_secs") || l == "secs" {
        Some(Unit::Secs)
    } else {
        None
    }
}

/// Collection types whose iteration order is nondeterministic.
pub const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Per-line unit annotations parsed from `// simlint::unit(<u>)`
/// comments; key is the comment's 1-based line. An annotation covers a
/// declaration on the same line or the line below.
pub type UnitAnnotations = BTreeMap<u32, Unit>;

/// The marker that introduces a unit annotation inside a comment.
pub const UNIT_MARKER: &str = "simlint::unit";

/// Extracts `// simlint::unit(us)` annotations from a file's comment
/// tokens. Malformed arguments are reported as `(line, col, message)`
/// errors so a typo'd unit cannot silently disable checking.
pub fn parse_unit_annotations(
    tokens: &[crate::lexer::Token],
) -> (UnitAnnotations, Vec<(u32, u32, String)>) {
    let mut anns = BTreeMap::new();
    let mut bad = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let trimmed = t.text.trim_start();
        let Some(rest) = trimmed.strip_prefix(UNIT_MARKER) else {
            continue;
        };
        // `simlint::unit(us)`, nothing else on the marker.
        let arg = rest
            .trim_start()
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(inner, _)| inner);
        match arg.and_then(Unit::from_annotation) {
            Some(u) => {
                anns.insert(t.line, u);
            }
            None => bad.push((
                t.line,
                t.col,
                "malformed simlint::unit annotation (expected `simlint::unit(us|ms|secs)`)"
                    .to_owned(),
            )),
        }
    }
    (anns, bad)
}

/// The marker that introduces a sim/observer state classification
/// inside a comment (consumed by the write-effect engine).
pub const STATE_MARKER: &str = "simlint::state";

/// Extracts `// simlint::state(sim|observer)` annotations from a
/// file's comment tokens, same shape and coverage convention as
/// [`parse_unit_annotations`]. Malformed arguments are reported so a
/// typo'd class cannot silently reclassify state.
pub fn parse_state_annotations(
    tokens: &[crate::lexer::Token],
) -> (
    crate::effects::StateAnnotations,
    Vec<(u32, u32, String)>,
) {
    let mut anns = BTreeMap::new();
    let mut bad = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let trimmed = t.text.trim_start();
        let Some(rest) = trimmed.strip_prefix(STATE_MARKER) else {
            continue;
        };
        let arg = rest
            .trim_start()
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(inner, _)| inner);
        match arg.and_then(crate::effects::StateClass::from_annotation) {
            Some(c) => {
                anns.insert(t.line, c);
            }
            None => bad.push((
                t.line,
                t.col,
                "malformed simlint::state annotation (expected `simlint::state(sim|observer)`)"
                    .to_owned(),
            )),
        }
    }
    (anns, bad)
}

/// Looks up the declared unit for a name defined at `line`: an explicit
/// annotation on the same or the previous line wins over the name's
/// suffix.
pub fn declared_unit(name: &str, line: u32, anns: &UnitAnnotations) -> Option<Unit> {
    anns.get(&line)
        .or_else(|| line.checked_sub(1).and_then(|l| anns.get(&l)))
        .copied()
        .or_else(|| unit_from_name(name))
}

/// Workspace-wide, name-keyed symbol facts.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Enum name → variant names, for exhaustiveness checking.
    pub enums: BTreeMap<String, Vec<String>>,
    /// Functions whose return type mentions a hash-ordered collection.
    pub hash_fns: BTreeSet<String>,
    /// Struct fields whose type mentions a hash-ordered collection.
    pub hash_fields: BTreeSet<String>,
    /// Function name → per-parameter declared units. Present only when
    /// every same-named function in the workspace agrees.
    fn_param_units: BTreeMap<String, Option<Vec<Option<Unit>>>>,
    /// Const/static name → declared unit.
    pub const_units: BTreeMap<String, Unit>,
}

impl Symbols {
    /// Builds a table from a set of parsed files with their unit
    /// annotations.
    pub fn build(files: &[(&File, &UnitAnnotations)]) -> Symbols {
        let mut s = Symbols::default();
        for (file, anns) in files {
            s.add_items(&file.items, anns);
        }
        s
    }

    /// Declared per-parameter units for `fn_name`, when unambiguous.
    pub fn param_units(&self, fn_name: &str) -> Option<&[Option<Unit>]> {
        match self.fn_param_units.get(fn_name) {
            Some(Some(units)) if units.iter().any(Option::is_some) => Some(units),
            _ => None,
        }
    }

    fn add_items(&mut self, items: &[Item], anns: &UnitAnnotations) {
        for item in items {
            match &item.kind {
                ItemKind::Fn(f) => self.add_fn(f, anns),
                ItemKind::Struct(st) => {
                    for field in &st.fields {
                        if field.ty.mentions(&HASH_TYPES) {
                            self.hash_fields.insert(field.name.clone());
                        }
                    }
                }
                ItemKind::Enum(e) => {
                    self.enums.insert(
                        e.name.clone(),
                        e.variants.iter().map(|v| v.0.clone()).collect(),
                    );
                }
                ItemKind::Impl(imp) => self.add_items(&imp.items, anns),
                ItemKind::Mod(m) if !m.cfg_test => {
                    self.add_items(&m.items, anns);
                }
                ItemKind::Const(c) => {
                    if let Some(u) = declared_unit(&c.name, c.line, anns) {
                        self.const_units.insert(c.name.clone(), u);
                    }
                }
                _ => {}
            }
        }
    }

    fn add_fn(&mut self, f: &ast::Func, anns: &UnitAnnotations) {
        if f.ret.as_ref().is_some_and(|t| t.mentions(&HASH_TYPES)) {
            self.hash_fns.insert(f.name.clone());
        }
        let units: Vec<Option<Unit>> = f
            .params
            .iter()
            .map(|p| {
                p.name
                    .as_deref()
                    .and_then(|n| declared_unit(n, p.line, anns))
            })
            .collect();
        self.fn_param_units
            .entry(f.name.clone())
            .and_modify(|existing| {
                // Same-named functions that disagree get no units at all.
                if existing.as_deref() != Some(units.as_slice()) {
                    *existing = None;
                }
            })
            .or_insert(Some(units));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn table(src: &str) -> (Symbols, UnitAnnotations) {
        let toks = lex(src);
        let file = parse_file(&toks);
        let (anns, bad) = parse_unit_annotations(&toks);
        assert!(bad.is_empty(), "{bad:?}");
        (Symbols::build(&[(&file, &anns)]), anns)
    }

    #[test]
    fn suffixes_infer_units() {
        assert_eq!(unit_from_name("window_ms"), Some(Unit::Ms));
        assert_eq!(unit_from_name("RETRY_US"), Some(Unit::Us));
        assert_eq!(unit_from_name("busy_cum_us"), Some(Unit::Us));
        assert_eq!(unit_from_name("drain_secs"), Some(Unit::Secs));
        assert_eq!(unit_from_name("millis"), Some(Unit::Ms));
        assert_eq!(unit_from_name("count"), None);
        assert_eq!(unit_from_name("terms"), None, "no underscore boundary");
    }

    #[test]
    fn hash_returning_fns_and_fields_are_collected() {
        let (s, _) = table(
            "pub struct T { pending: HashMap<u64, u32>, done: Vec<u64> }\n\
             impl T { pub fn index(&self) -> &HashMap<u64, u32> { &self.pending } }\n\
             pub fn plain() -> Vec<u64> { Vec::new() }",
        );
        assert!(s.hash_fields.contains("pending"));
        assert!(!s.hash_fields.contains("done"));
        assert!(s.hash_fns.contains("index"));
        assert!(!s.hash_fns.contains("plain"));
    }

    #[test]
    fn enums_and_annotated_consts_are_collected() {
        let (s, _) = table(
            "pub enum QueueKind { Wheel, Heap }\n\
             // simlint::unit(us)\n\
             pub const WINDOW: u64 = 50_000;\n\
             pub const RETRY_MS: u64 = 20;",
        );
        assert_eq!(s.enums["QueueKind"], vec!["Wheel", "Heap"]);
        assert_eq!(s.const_units.get("WINDOW"), Some(&Unit::Us));
        assert_eq!(s.const_units.get("RETRY_MS"), Some(&Unit::Ms));
    }

    #[test]
    fn conflicting_fn_signatures_report_no_units() {
        let (s, _) = table(
            "pub fn record(rt_us: u64) {}\n\
             mod other { pub fn record(rt_ms: u64) {} }",
        );
        assert!(s.param_units("record").is_none());
    }

    #[test]
    fn agreeing_fn_signatures_report_units() {
        let (s, _) = table("pub fn on_window(start_us: u64, len: usize) {}");
        let units = s.param_units("on_window").unwrap();
        assert_eq!(units, &[Some(Unit::Us), None]);
    }

    #[test]
    fn malformed_unit_annotation_is_reported() {
        let toks = lex("// simlint::unit(hours)\npub const X: u64 = 1;");
        let (anns, bad) = parse_unit_annotations(&toks);
        assert!(anns.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn malformed_state_annotation_is_reported() {
        let toks = lex("// simlint::state(tracing)\npub struct T { pub x: u64 }");
        let (anns, bad) = parse_state_annotations(&toks);
        assert!(anns.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn test_mods_do_not_pollute_the_table() {
        let (s, _) =
            table("#[cfg(test)] mod tests { pub fn h() -> HashMap<u64, u64> { HashMap::new() } }");
        assert!(!s.hash_fns.contains("h"));
    }
}
