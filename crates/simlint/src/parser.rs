//! Recursive-descent parser from the lexer's token stream to the
//! [`ast`](crate::ast) tree.
//!
//! Two passes. First, [`cook`] glues adjacent single-character
//! punctuation into compound operators (`::`, `->`, `..=`, `&&`, ...)
//! using line/column adjacency, so the parser sees one token per
//! operator. `<<`/`>>` are deliberately *not* glued — in type position
//! they close nested generics — and are instead recognized by adjacency
//! only where a binary operator is grammatically possible.
//!
//! Second, a hand-rolled recursive-descent parser with a Pratt
//! expression core builds the AST. It is loss-tolerant by design: the
//! parser **never panics and never fails a file**. Anything it cannot
//! model is skipped with balanced-delimiter recovery to the next item
//! or statement boundary, recorded in [`ast::File::recovered_skips`].
//! Trait bodies are parsed like `impl` blocks (default methods keep
//! their bodies); `trait` items therefore surface as [`ItemKind::Impl`].
//! A recursion-depth cap guards against pathological nesting.

use crate::ast::{
    Arm, Block, ConstDef, EnumDef, Expr, ExprKind, FieldDef, File, Func, ImplDef, Item, ItemKind,
    Lit, ModDef, Param, Pat, PatKind, Span, Stmt, StmtKind, StructDef, TypeRef,
};
use crate::lexer::{Token, TokenKind};

/// Cooked token payload.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pk {
    Ident(String),
    Num(String),
    Str,
    Char,
    Lifetime,
    /// A glued compound operator.
    Op(&'static str),
    /// A single punctuation character.
    P(char),
}

/// One cooked token.
#[derive(Debug, Clone)]
struct PTok {
    kind: Pk,
    line: u32,
    col: u32,
}

/// Compound operators glued by [`cook`], longest first. `<<`/`>>` are
/// absent on purpose (generics); shifts are detected positionally.
const GLUE3: [&str; 3] = ["..=", "<<=", ">>="];
const GLUE2: [&str; 18] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=",
];

fn cook(tokens: &[Token]) -> Vec<PTok> {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    let punct = |t: &Token| match t.kind {
        TokenKind::Punct(c) => Some(c),
        _ => None,
    };
    // Two puncts are one operator only when physically adjacent.
    let adj = |a: &Token, b: &Token| b.line == a.line && b.col == a.col + 1;
    while i < toks.len() {
        let t = toks[i];
        let kind = match t.kind {
            TokenKind::Ident => Pk::Ident(t.text.clone()),
            TokenKind::Number => Pk::Num(t.text.clone()),
            TokenKind::Str => Pk::Str,
            TokenKind::Char => Pk::Char,
            TokenKind::Lifetime => Pk::Lifetime,
            TokenKind::LineComment | TokenKind::BlockComment => unreachable!("filtered"),
            TokenKind::Punct(c) => {
                let mut glued = None;
                if let (Some(c2), Some(c3)) = (
                    toks.get(i + 1).and_then(|t| punct(t)),
                    toks.get(i + 2).and_then(|t| punct(t)),
                ) {
                    if adj(t, toks[i + 1]) && adj(toks[i + 1], toks[i + 2]) {
                        let s: String = [c, c2, c3].iter().collect();
                        if let Some(op) = GLUE3.iter().find(|g| ***g == s) {
                            glued = Some((op, 3));
                        }
                    }
                }
                if glued.is_none() {
                    if let Some(c2) = toks.get(i + 1).and_then(|t| punct(t)) {
                        if adj(t, toks[i + 1]) {
                            let s: String = [c, c2].iter().collect();
                            if let Some(op) = GLUE2.iter().find(|g| ***g == s) {
                                glued = Some((op, 2));
                            }
                        }
                    }
                }
                match glued {
                    Some((op, n)) => {
                        out.push(PTok {
                            kind: Pk::Op(op),
                            line: t.line,
                            col: t.col,
                        });
                        i += n;
                        continue;
                    }
                    None => Pk::P(c),
                }
            }
        };
        out.push(PTok {
            kind,
            line: t.line,
            col: t.col,
        });
        i += 1;
    }
    out
}

/// Parses a lexed file into an AST. Never fails: unparseable regions
/// are skipped and counted in [`File::recovered_skips`].
pub fn parse_file(tokens: &[Token]) -> File {
    let toks = cook(tokens);
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
        skips: 0,
    };
    let mut items = Vec::new();
    while p.peek().is_some() {
        if p.at_p('#') && matches!(p.nth_kind(1), Some(Pk::P('!'))) {
            // Inner attribute (`#![forbid(unsafe_code)]`).
            let mut sink = Vec::new();
            if p.parse_attr(&mut sink).is_none() {
                p.recover_item();
            }
            continue;
        }
        match p.parse_item() {
            Some(item) => items.push(item),
            None => p.recover_item(),
        }
    }
    File {
        items,
        recovered_skips: p.skips,
    }
}

/// Recursion cap for expressions, items, and patterns. Each level costs
/// several parser frames, and `lint_source` runs on 2 MiB test-thread
/// stacks, so the cap must stay far below what that stack can absorb;
/// the corpus round-trip test proves real workspace code never needs
/// even half of this.
const MAX_DEPTH: u32 = 64;

/// Keywords that can begin an item; recovery resynchronizes on these.
const ITEM_KEYWORDS: [&str; 13] = [
    "pub",
    "fn",
    "struct",
    "enum",
    "impl",
    "mod",
    "const",
    "static",
    "use",
    "trait",
    "type",
    "macro_rules",
    "extern",
];

struct Parser {
    toks: Vec<PTok>,
    pos: usize,
    depth: u32,
    skips: u32,
}

impl Parser {
    fn peek(&self) -> Option<&PTok> {
        self.toks.get(self.pos)
    }

    fn nth_kind(&self, k: usize) -> Option<&Pk> {
        self.toks.get(self.pos + k).map(|t| &t.kind)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn at_p(&self, c: char) -> bool {
        matches!(self.peek(), Some(t) if t.kind == Pk::P(c))
    }

    fn eat_p(&mut self, c: char) -> bool {
        if self.at_p(c) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn at_op(&self, s: &str) -> bool {
        matches!(self.peek(), Some(t) if matches!(t.kind, Pk::Op(o) if o == s))
    }

    fn eat_op(&mut self, s: &str) -> bool {
        if self.at_op(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn at_kw(&self, s: &str) -> bool {
        matches!(self.peek(), Some(t) if matches!(&t.kind, Pk::Ident(i) if i == s))
    }

    fn eat_kw(&mut self, s: &str) -> bool {
        if self.at_kw(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<&str> {
        match self.peek().map(|t| &t.kind) {
            Some(Pk::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn eat_ident(&mut self) -> Option<String> {
        let s = self.ident_text()?.to_owned();
        self.advance();
        Some(s)
    }

    /// (line, col) of the current token, or of the last token at EOF.
    fn here(&self) -> (u32, u32) {
        match self.peek() {
            Some(t) => (t.line, t.col),
            None => self.toks.last().map(|t| (t.line, t.col)).unwrap_or((1, 1)),
        }
    }

    /// Line of the most recently consumed token.
    fn prev_line(&self) -> u32 {
        if self.pos == 0 {
            return 1;
        }
        self.toks
            .get(self.pos - 1)
            .or_else(|| self.toks.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn span_from(&self, start: (u32, u32)) -> Span {
        Span {
            line: start.0,
            col: start.1,
            end_line: self.prev_line().max(start.0),
        }
    }

    // ----- recovery -------------------------------------------------

    /// Skips past unparseable input to the next depth-0 item keyword.
    fn recover_item(&mut self) {
        self.skips += 1;
        let mut depth = 0i32;
        let mut first = true;
        while let Some(t) = self.peek() {
            if !first && depth == 0 {
                if let Pk::Ident(s) = &t.kind {
                    if ITEM_KEYWORDS.contains(&s.as_str()) {
                        return;
                    }
                }
            }
            match t.kind {
                Pk::P('{') | Pk::P('(') | Pk::P('[') => depth += 1,
                Pk::P('}') | Pk::P(')') | Pk::P(']') => {
                    depth -= 1;
                    if depth < 0 {
                        self.advance();
                        return;
                    }
                }
                _ => {}
            }
            self.advance();
            first = false;
        }
    }

    /// Skips to the next `;` (consumed) or `}` (left) at depth 0.
    fn recover_stmt(&mut self) {
        self.skips += 1;
        let mut depth = 0i32;
        let mut first = true;
        while let Some(t) = self.peek() {
            match t.kind {
                Pk::P('{') | Pk::P('(') | Pk::P('[') => depth += 1,
                Pk::P('}') | Pk::P(')') | Pk::P(']') => {
                    if depth == 0 {
                        if first {
                            self.advance();
                        }
                        return;
                    }
                    depth -= 1;
                }
                Pk::P(';') if depth == 0 => {
                    self.advance();
                    return;
                }
                _ => {}
            }
            self.advance();
            first = false;
        }
    }

    /// Consumes a balanced `(…)`, `[…]` or `{…}` group (opener is the
    /// current token), optionally collecting identifiers seen inside.
    fn skip_balanced(&mut self, idents: Option<&mut Vec<String>>) -> Option<()> {
        let mut idents = idents;
        let open = match self.peek()?.kind {
            Pk::P(c @ ('(' | '[' | '{')) => c,
            _ => return None,
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        self.advance();
        let mut depth = 1i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                Pk::P(c) if *c == open => depth += 1,
                Pk::P(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.advance();
                        return Some(());
                    }
                }
                Pk::Ident(s) => {
                    if let Some(v) = idents.as_deref_mut() {
                        v.push(s.clone());
                    }
                }
                _ => {}
            }
            self.advance();
        }
        None
    }

    /// Consumes a balanced `<…>` generic-argument group (current token
    /// is `<`), collecting identifiers.
    fn skip_generics(&mut self, idents: Option<&mut Vec<String>>) -> Option<()> {
        let mut idents = idents;
        if !self.eat_p('<') {
            return None;
        }
        let mut depth = 1i32;
        while let Some(t) = self.peek() {
            match &t.kind {
                Pk::P('<') => {
                    depth += 1;
                    self.advance();
                }
                Pk::P('>') => {
                    depth -= 1;
                    self.advance();
                    if depth == 0 {
                        return Some(());
                    }
                }
                Pk::P('(' | '[' | '{') => {
                    self.skip_balanced(idents.as_deref_mut())?;
                }
                Pk::P(';') => return None, // malformed: ran off the generics
                Pk::Ident(s) => {
                    if let Some(v) = idents.as_deref_mut() {
                        v.push(s.clone());
                    }
                    self.advance();
                }
                _ => self.advance(),
            }
        }
        None
    }

    /// Skips a `where` clause (current token is `where`) up to `{` or
    /// `;` at depth 0.
    fn skip_where(&mut self) -> Option<()> {
        self.eat_kw("where");
        while let Some(t) = self.peek() {
            match t.kind {
                Pk::P('{') | Pk::P(';') => return Some(()),
                Pk::P('<') => self.skip_generics(None)?,
                Pk::P('(' | '[') => self.skip_balanced(None)?,
                _ => self.advance(),
            }
        }
        None
    }

    // ----- attributes & items ---------------------------------------

    /// Consumes `#[...]` / `#![...]` (current token is `#`), collecting
    /// the identifiers inside into `idents`.
    fn parse_attr(&mut self, idents: &mut Vec<String>) -> Option<()> {
        if !self.eat_p('#') {
            return None;
        }
        self.eat_p('!');
        if !self.at_p('[') {
            return None;
        }
        self.skip_balanced(Some(idents))
    }

    fn parse_item(&mut self) -> Option<Item> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        self.depth += 1;
        let r = self.parse_item_inner();
        self.depth -= 1;
        r
    }

    fn parse_item_inner(&mut self) -> Option<Item> {
        let start = self.here();
        let mut attrs = Vec::new();
        while self.at_p('#') && !matches!(self.nth_kind(1), Some(Pk::P('!'))) {
            self.parse_attr(&mut attrs)?;
        }
        if self.eat_kw("pub") && self.at_p('(') {
            self.skip_balanced(None)?;
        }
        // `const fn` / `async fn` / `unsafe fn` / `extern "C" fn`.
        loop {
            if (self.at_kw("const")
                && matches!(self.nth_kind(1), Some(Pk::Ident(s)) if s == "fn" || s == "unsafe" || s == "extern" || s == "async"))
                || self.at_kw("async")
                || self.at_kw("unsafe")
            {
                self.advance();
            } else if self.at_kw("extern")
                && matches!(self.nth_kind(1), Some(Pk::Str))
                && matches!(self.nth_kind(2), Some(Pk::Ident(s)) if s == "fn")
            {
                self.advance();
                self.advance();
            } else {
                break;
            }
        }
        let kind = match self.ident_text()? {
            "use" => {
                self.advance();
                while let Some(t) = self.peek() {
                    match t.kind {
                        Pk::P(';') => {
                            self.advance();
                            break;
                        }
                        Pk::P('{') => self.skip_balanced(None)?,
                        _ => self.advance(),
                    }
                }
                ItemKind::Use
            }
            "mod" => {
                self.advance();
                let name = self.eat_ident()?;
                if self.eat_p(';') {
                    ItemKind::Mod(ModDef {
                        name,
                        items: Vec::new(),
                        cfg_test: false,
                    })
                } else {
                    if !self.eat_p('{') {
                        return None;
                    }
                    let items = self.parse_item_list()?;
                    let cfg_test =
                        attrs.iter().any(|a| a == "cfg") && attrs.iter().any(|a| a == "test");
                    ItemKind::Mod(ModDef {
                        name,
                        items,
                        cfg_test,
                    })
                }
            }
            "fn" => {
                self.advance();
                ItemKind::Fn(self.parse_fn()?)
            }
            "struct" => {
                self.advance();
                ItemKind::Struct(self.parse_struct()?)
            }
            "enum" => {
                self.advance();
                ItemKind::Enum(self.parse_enum()?)
            }
            "impl" => {
                self.advance();
                ItemKind::Impl(self.parse_impl()?)
            }
            "trait" => {
                self.advance();
                let name = self.eat_ident()?;
                if self.at_p('<') {
                    self.skip_generics(None)?;
                }
                // Supertrait bounds / where clause, up to the body.
                while let Some(t) = self.peek() {
                    match t.kind {
                        Pk::P('{') | Pk::P(';') => break,
                        Pk::P('<') => self.skip_generics(None)?,
                        Pk::P('(' | '[') => self.skip_balanced(None)?,
                        _ => self.advance(),
                    }
                }
                if self.eat_p(';') {
                    ItemKind::Other
                } else {
                    if !self.eat_p('{') {
                        return None;
                    }
                    let items = self.parse_item_list()?;
                    ItemKind::Impl(ImplDef {
                        ty_name: name,
                        items,
                    })
                }
            }
            "const" | "static" => {
                self.advance();
                self.eat_kw("mut");
                let line = self.here().0;
                let name = self.eat_ident()?;
                let ty = if self.eat_p(':') {
                    Some(self.parse_type())
                } else {
                    None
                };
                let value = if self.eat_p('=') {
                    let v = self.parse_expr(true);
                    if v.is_none() {
                        self.recover_stmt();
                    }
                    v
                } else {
                    None
                };
                self.eat_p(';');
                ItemKind::Const(ConstDef {
                    name,
                    ty,
                    value,
                    line,
                })
            }
            "type" => {
                self.advance();
                while let Some(t) = self.peek() {
                    match t.kind {
                        Pk::P(';') => {
                            self.advance();
                            break;
                        }
                        Pk::P('<') => self.skip_generics(None)?,
                        Pk::P('(' | '[' | '{') => self.skip_balanced(None)?,
                        _ => self.advance(),
                    }
                }
                ItemKind::Other
            }
            "macro_rules" => {
                self.advance();
                self.eat_p('!');
                self.eat_ident()?;
                self.skip_balanced(None)?;
                ItemKind::Other
            }
            "extern" => {
                self.advance();
                if self.eat_kw("crate") {
                    while self.peek().is_some() && !self.eat_p(';') {
                        self.advance();
                    }
                    ItemKind::Other
                } else {
                    if matches!(self.peek().map(|t| &t.kind), Some(Pk::Str)) {
                        self.advance();
                    }
                    if self.at_p('{') {
                        self.skip_balanced(None)?;
                    }
                    ItemKind::Other
                }
            }
            _ => {
                // Item-position bang macro: `criterion_main!(benches);`,
                // `thread_local! { … }` — consume the invocation whole.
                if matches!(self.nth_kind(1), Some(Pk::P('!'))) {
                    self.advance();
                    self.advance();
                    if matches!(self.peek().map(|t| &t.kind), Some(Pk::P('(' | '[' | '{'))) {
                        self.skip_balanced(None)?;
                    }
                    self.eat_p(';');
                    ItemKind::Other
                } else {
                    return None;
                }
            }
        };
        Some(Item {
            kind,
            span: self.span_from(start),
        })
    }

    /// Parses items until a closing `}` (consumed), recovering inside
    /// the block on failures.
    fn parse_item_list(&mut self) -> Option<Vec<Item>> {
        let mut items = Vec::new();
        loop {
            if self.eat_p('}') {
                return Some(items);
            }
            if self.peek().is_none() {
                return Some(items); // unterminated; tolerate
            }
            match self.parse_item() {
                Some(item) => items.push(item),
                None => {
                    self.skips += 1;
                    // Skip one balanced token group or token, then retry.
                    match self.peek().map(|t| t.kind.clone()) {
                        Some(Pk::P('(' | '[' | '{')) => {
                            if self.skip_balanced(None).is_none() {
                                return Some(items);
                            }
                        }
                        Some(_) => self.advance(),
                        None => return Some(items),
                    }
                }
            }
        }
    }

    fn parse_fn(&mut self) -> Option<Func> {
        let name = self.eat_ident()?;
        if self.at_p('<') {
            self.skip_generics(None)?;
        }
        if !self.eat_p('(') {
            return None;
        }
        let mut params = Vec::new();
        loop {
            if self.eat_p(')') {
                break;
            }
            self.peek()?;
            let mut attr_sink = Vec::new();
            while self.at_p('#') {
                self.parse_attr(&mut attr_sink)?;
            }
            let line = self.here().0;
            // Receiver forms: `self`, `mut self`, `&self`, `&'a mut self`.
            let save = self.pos;
            let is_self = if self.eat_p('&') || self.eat_op("&&") {
                if matches!(self.peek().map(|t| &t.kind), Some(Pk::Lifetime)) {
                    self.advance();
                }
                self.eat_kw("mut");
                self.eat_kw("self")
            } else {
                self.eat_kw("mut");
                self.eat_kw("self")
            };
            if is_self {
                params.push(Param {
                    name: Some("self".to_owned()),
                    ty: None,
                    line,
                });
            } else {
                self.pos = save;
                let pat = self.parse_pat()?;
                let names = pat.bound_names();
                let ty = if self.eat_p(':') {
                    Some(self.parse_type())
                } else {
                    None
                };
                params.push(Param {
                    name: if names.len() == 1 {
                        Some(names.into_iter().next().unwrap())
                    } else {
                        None
                    },
                    ty,
                    line,
                });
            }
            if !self.eat_p(',') && !self.at_p(')') {
                return None;
            }
        }
        let ret = if self.eat_op("->") {
            let mut t = self.parse_type();
            // Bound sums only exist in type (not cast) position, so the
            // `+` is consumed here rather than in `parse_type`, which
            // the cast parser shares: `impl Iterator<Item = …> + '_`.
            while self.eat_p('+') {
                if matches!(self.peek().map(|tok| &tok.kind), Some(Pk::Lifetime)) {
                    self.advance();
                } else {
                    t.idents.extend(self.parse_type().idents);
                }
            }
            Some(t)
        } else {
            None
        };
        if self.at_kw("where") {
            self.skip_where()?;
        }
        let body = if self.at_p('{') {
            Some(self.parse_block()?)
        } else {
            self.eat_p(';');
            None
        };
        Some(Func {
            name,
            params,
            ret,
            body,
        })
    }

    fn parse_struct(&mut self) -> Option<StructDef> {
        let name = self.eat_ident()?;
        if self.at_p('<') {
            self.skip_generics(None)?;
        }
        if self.at_kw("where") {
            self.skip_where()?;
        }
        let mut fields = Vec::new();
        if self.eat_p('{') {
            loop {
                if self.eat_p('}') {
                    break;
                }
                if self.peek().is_none() {
                    break;
                }
                let mut attr_sink = Vec::new();
                while self.at_p('#') {
                    self.parse_attr(&mut attr_sink)?;
                }
                if self.eat_kw("pub") && self.at_p('(') {
                    self.skip_balanced(None)?;
                }
                let line = self.here().0;
                let fname = self.eat_ident()?;
                if !self.eat_p(':') {
                    return None;
                }
                let ty = self.parse_type();
                fields.push(FieldDef {
                    name: fname,
                    ty,
                    line,
                });
                self.eat_p(',');
            }
        } else if self.at_p('(') {
            self.skip_balanced(None)?;
            if self.at_kw("where") {
                self.skip_where()?;
            }
            self.eat_p(';');
        } else {
            self.eat_p(';');
        }
        Some(StructDef { name, fields })
    }

    fn parse_enum(&mut self) -> Option<EnumDef> {
        let name = self.eat_ident()?;
        if self.at_p('<') {
            self.skip_generics(None)?;
        }
        if self.at_kw("where") {
            self.skip_where()?;
        }
        if !self.eat_p('{') {
            return None;
        }
        let mut variants = Vec::new();
        loop {
            if self.eat_p('}') {
                break;
            }
            if self.peek().is_none() {
                break;
            }
            let mut attr_sink = Vec::new();
            while self.at_p('#') {
                self.parse_attr(&mut attr_sink)?;
            }
            let line = self.here().0;
            let vname = self.eat_ident()?;
            variants.push((vname, line));
            if self.at_p('(') || self.at_p('{') {
                self.skip_balanced(None)?;
            }
            if self.eat_p('=') {
                // Explicit discriminant: skip to the variant separator.
                while let Some(t) = self.peek() {
                    match t.kind {
                        Pk::P(',') | Pk::P('}') => break,
                        Pk::P('(' | '[' | '{') => self.skip_balanced(None)?,
                        _ => self.advance(),
                    }
                }
            }
            self.eat_p(',');
        }
        Some(EnumDef { name, variants })
    }

    fn parse_impl(&mut self) -> Option<ImplDef> {
        if self.at_p('<') {
            self.skip_generics(None)?;
        }
        // `impl [Trait for] Type { … }`: the implemented type's name is
        // the last depth-0 identifier before the body.
        let mut ty_name = String::new();
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(Pk::P('{')) => break,
                Some(Pk::Ident(s)) if s == "where" => {
                    self.skip_where()?;
                    break;
                }
                Some(Pk::Ident(s)) if s == "for" => {
                    ty_name.clear();
                    self.advance();
                }
                Some(Pk::Ident(s)) => {
                    if !matches!(s.as_str(), "dyn" | "mut" | "impl") {
                        ty_name = s;
                    }
                    self.advance();
                }
                Some(Pk::P('<')) => self.skip_generics(None)?,
                Some(Pk::P('(' | '[')) => self.skip_balanced(None)?,
                Some(_) => self.advance(),
                None => return None,
            }
        }
        if !self.eat_p('{') {
            return None;
        }
        let items = self.parse_item_list()?;
        Some(ImplDef { ty_name, items })
    }

    // ----- blocks & statements --------------------------------------

    fn parse_block(&mut self) -> Option<Block> {
        let start = self.here();
        if !self.eat_p('{') {
            return None;
        }
        let mut stmts = Vec::new();
        loop {
            if self.eat_p('}') {
                break;
            }
            if self.peek().is_none() {
                break; // unterminated; tolerate
            }
            let stmt_start = self.here();
            if self.at_p('#') {
                let mut sink = Vec::new();
                if self.parse_attr(&mut sink).is_none() {
                    self.recover_stmt();
                }
                continue;
            }
            if self.eat_p(';') {
                continue;
            }
            if self.at_kw("let") {
                match self.parse_let_stmt() {
                    Some(kind) => stmts.push(Stmt {
                        kind,
                        span: self.span_from(stmt_start),
                    }),
                    None => {
                        self.recover_stmt();
                        stmts.push(Stmt {
                            kind: StmtKind::Skipped,
                            span: self.span_from(stmt_start),
                        });
                    }
                }
                continue;
            }
            if self.at_item_start() {
                match self.parse_item() {
                    Some(item) => stmts.push(Stmt {
                        span: item.span,
                        kind: StmtKind::Item(item),
                    }),
                    None => {
                        self.recover_stmt();
                        stmts.push(Stmt {
                            kind: StmtKind::Skipped,
                            span: self.span_from(stmt_start),
                        });
                    }
                }
                continue;
            }
            match self.parse_expr(true) {
                Some(e) => {
                    self.eat_p(';');
                    stmts.push(Stmt {
                        span: self.span_from(stmt_start),
                        kind: StmtKind::Expr(e),
                    });
                }
                None => {
                    self.recover_stmt();
                    stmts.push(Stmt {
                        kind: StmtKind::Skipped,
                        span: self.span_from(stmt_start),
                    });
                }
            }
        }
        Some(Block {
            stmts,
            span: self.span_from(start),
        })
    }

    /// Whether the current token begins a nested item (not an
    /// expression). `const` needs lookahead: `const { … }` blocks and
    /// `const fn` are handled by the item parser anyway.
    fn at_item_start(&self) -> bool {
        match self.ident_text() {
            Some(
                "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "trait" | "type"
                | "macro_rules" | "static",
            ) => true,
            Some("pub") => true,
            Some("const") => !matches!(self.nth_kind(1), Some(Pk::P('{'))),
            _ => false,
        }
    }

    fn parse_let_stmt(&mut self) -> Option<StmtKind> {
        if !self.eat_kw("let") {
            return None;
        }
        let pat = self.parse_pat()?;
        let names = pat.bound_names();
        let ty = if self.eat_p(':') {
            Some(self.parse_type())
        } else {
            None
        };
        let init = if self.eat_p('=') {
            Some(self.parse_expr(true)?)
        } else {
            None
        };
        if self.eat_kw("else") {
            self.parse_block()?;
        }
        self.eat_p(';');
        Some(StmtKind::Let { names, ty, init })
    }

    // ----- types ----------------------------------------------------

    /// Consumes a type, collecting the identifiers it mentions
    /// (generic arguments included). Stops at any token that cannot
    /// continue a type (`,`, `;`, `)`, `{`, `=`, `where`, operators...).
    /// Never fails; an empty `TypeRef` means nothing was consumed.
    fn parse_type(&mut self) -> TypeRef {
        let mut idents = Vec::new();
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(Pk::P('&') | Pk::P('*') | Pk::P('!')) => self.advance(),
                Some(Pk::Lifetime) => self.advance(),
                Some(Pk::Op("::") | Pk::Op("->")) => self.advance(),
                Some(Pk::P('(') | Pk::P('[')) => {
                    if self.skip_balanced(Some(&mut idents)).is_none() {
                        break;
                    }
                }
                Some(Pk::P('<')) => {
                    if self.skip_generics(Some(&mut idents)).is_none() {
                        break;
                    }
                }
                Some(Pk::Ident(s)) => match s.as_str() {
                    "where" | "else" => break,
                    "mut" | "dyn" | "impl" | "fn" | "as" | "for" => self.advance(),
                    _ => {
                        idents.push(s);
                        self.advance();
                    }
                },
                _ => break,
            }
        }
        TypeRef { idents }
    }

    // ----- patterns -------------------------------------------------

    fn parse_pat(&mut self) -> Option<Pat> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        self.depth += 1;
        let r = self.parse_pat_inner();
        self.depth -= 1;
        r
    }

    fn parse_pat_inner(&mut self) -> Option<Pat> {
        let start = self.here();
        self.eat_p('|'); // leading `|`
        let first = self.parse_pat_single()?;
        if !self.at_p('|') {
            return Some(first);
        }
        let mut alts = vec![first];
        while self.eat_p('|') {
            alts.push(self.parse_pat_single()?);
        }
        Some(Pat {
            kind: PatKind::Or(alts),
            span: self.span_from(start),
        })
    }

    fn parse_pat_single(&mut self) -> Option<Pat> {
        let start = self.here();
        let pat = self.parse_pat_atom()?;
        if self.eat_p('@') {
            let sub = self.parse_pat_single()?;
            // `name @ pat`: keep both so bound names include the binding.
            return Some(Pat {
                kind: PatKind::Tuple(vec![pat, sub]),
                span: self.span_from(start),
            });
        }
        Some(pat)
    }

    fn parse_pat_atom(&mut self) -> Option<Pat> {
        let start = self.here();
        let done = |p: &mut Self, kind| {
            Some(Pat {
                kind,
                span: p.span_from(start),
            })
        };
        match self.peek().map(|t| t.kind.clone())? {
            Pk::P('&') | Pk::Op("&&") => {
                self.advance();
                self.eat_kw("mut");
                // Reference patterns are transparent for our purposes.
                self.parse_pat_single()
            }
            Pk::Op("..") => {
                self.advance();
                done(self, PatKind::Rest)
            }
            Pk::P('-') | Pk::Num(_) | Pk::Str | Pk::Char => {
                self.eat_p('-');
                self.advance();
                if self.eat_op("..=") || self.eat_op("..") {
                    self.eat_p('-');
                    if matches!(
                        self.peek().map(|t| &t.kind),
                        Some(Pk::Num(_) | Pk::Str | Pk::Char | Pk::Ident(_))
                    ) {
                        self.parse_pat_atom()?;
                    }
                }
                done(self, PatKind::Lit)
            }
            Pk::P('(') => {
                self.advance();
                let mut elems = Vec::new();
                loop {
                    if self.eat_p(')') {
                        break;
                    }
                    self.peek()?;
                    elems.push(self.parse_pat()?);
                    if !self.eat_p(',') && !self.at_p(')') {
                        return None;
                    }
                }
                done(self, PatKind::Tuple(elems))
            }
            Pk::P('[') => {
                self.skip_balanced(None)?;
                done(self, PatKind::Other)
            }
            Pk::Ident(first) => {
                if first == "_" {
                    self.advance();
                    return done(self, PatKind::Wild);
                }
                if first == "mut" || first == "ref" {
                    self.advance();
                    self.eat_kw("mut");
                    let name = self.eat_ident()?;
                    return done(self, PatKind::Binding(name));
                }
                if first == "box" {
                    self.advance();
                    return self.parse_pat_single();
                }
                self.advance();
                let mut segs = vec![first];
                while self.at_op("::") {
                    if matches!(self.nth_kind(1), Some(Pk::P('<'))) {
                        self.advance();
                        self.skip_generics(None)?;
                        continue;
                    }
                    self.advance();
                    segs.push(self.eat_ident()?);
                }
                if self.at_p('(') {
                    self.advance();
                    let mut elems = Vec::new();
                    loop {
                        if self.eat_p(')') {
                            break;
                        }
                        self.peek()?;
                        elems.push(self.parse_pat()?);
                        if !self.eat_p(',') && !self.at_p(')') {
                            return None;
                        }
                    }
                    return done(self, PatKind::TupleStruct { path: segs, elems });
                }
                if self.at_p('{') {
                    self.advance();
                    let mut fields = Vec::new();
                    loop {
                        if self.eat_p('}') {
                            break;
                        }
                        self.peek()?;
                        if self.eat_op("..") {
                            continue;
                        }
                        self.eat_kw("ref");
                        self.eat_kw("mut");
                        let fname = self.eat_ident()?;
                        if self.eat_p(':') {
                            let sub = self.parse_pat()?;
                            fields.extend(sub.bound_names());
                        } else {
                            fields.push(fname);
                        }
                        if !self.eat_p(',') && !self.at_p('}') {
                            return None;
                        }
                    }
                    return done(self, PatKind::Struct { path: segs, fields });
                }
                if self.eat_op("..=") || self.eat_op("..") {
                    // Path range pattern (`X::MIN..=X::MAX`).
                    if matches!(
                        self.peek().map(|t| &t.kind),
                        Some(Pk::Num(_) | Pk::Str | Pk::Char | Pk::Ident(_) | Pk::P('-'))
                    ) {
                        self.parse_pat_atom()?;
                    }
                    return done(self, PatKind::Lit);
                }
                if segs.len() == 1
                    && segs[0]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    let name = segs.into_iter().next().unwrap();
                    return done(self, PatKind::Binding(name));
                }
                done(self, PatKind::Path(segs))
            }
            _ => None,
        }
    }

    // ----- expressions ----------------------------------------------

    fn parse_expr(&mut self, allow_struct: bool) -> Option<Expr> {
        self.parse_bp(0, allow_struct)
    }

    fn parse_bp(&mut self, min_bp: u8, allow_struct: bool) -> Option<Expr> {
        if self.depth >= MAX_DEPTH {
            return None;
        }
        self.depth += 1;
        let r = self.parse_bp_inner(min_bp, allow_struct);
        self.depth -= 1;
        r
    }

    /// Infix binding powers: `(left, right)`; assignment is
    /// right-associative, everything else left-associative.
    fn infix_bp(op: &str) -> Option<(u8, u8)> {
        Some(match op {
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 2),
            ".." | "..=" => (4, 5),
            "||" => (6, 7),
            "&&" => (8, 9),
            "==" | "!=" | "<" | ">" | "<=" | ">=" => (10, 11),
            "|" => (12, 13),
            "^" => (14, 15),
            "&" => (16, 17),
            "<<" | ">>" => (18, 19),
            "+" | "-" => (20, 21),
            "*" | "/" | "%" => (22, 23),
            _ => return None,
        })
    }

    /// The infix operator at the cursor, if any, with how many tokens it
    /// spans (shifts arrive as two adjacent `<`/`>` puncts).
    fn peek_infix(&self) -> Option<(&'static str, usize)> {
        let t = self.peek()?;
        match &t.kind {
            Pk::Op(o) => Some((o, 1)),
            Pk::P(c @ ('<' | '>')) => {
                if let Some(n) = self.toks.get(self.pos + 1) {
                    if n.kind == t.kind && n.line == t.line && n.col == t.col + 1 {
                        return Some((if *c == '<' { "<<" } else { ">>" }, 2));
                    }
                }
                Some((if *c == '<' { "<" } else { ">" }, 1))
            }
            Pk::P('+') => Some(("+", 1)),
            Pk::P('-') => Some(("-", 1)),
            Pk::P('*') => Some(("*", 1)),
            Pk::P('/') => Some(("/", 1)),
            Pk::P('%') => Some(("%", 1)),
            Pk::P('^') => Some(("^", 1)),
            Pk::P('&') => Some(("&", 1)),
            Pk::P('|') => Some(("|", 1)),
            Pk::P('=') => Some(("=", 1)),
            _ => None,
        }
    }

    fn parse_bp_inner(&mut self, min_bp: u8, allow_struct: bool) -> Option<Expr> {
        let start = self.here();
        let mut lhs = self.parse_prefix(allow_struct)?;
        loop {
            // Postfix operators bind tightest.
            if self.at_p('.') {
                self.advance();
                if self.eat_kw("await") {
                    continue;
                }
                if let Some(Pk::Num(n)) = self.nth_kind(0).cloned() {
                    self.advance();
                    lhs = Expr {
                        kind: ExprKind::Field {
                            recv: Box::new(lhs),
                            name: n,
                        },
                        span: self.span_from(start),
                    };
                    continue;
                }
                let name = self.eat_ident()?;
                if self.at_op("::") && matches!(self.nth_kind(1), Some(Pk::P('<'))) {
                    self.advance();
                    self.skip_generics(None)?;
                }
                if self.at_p('(') {
                    let args = self.parse_call_args()?;
                    lhs = Expr {
                        kind: ExprKind::MethodCall {
                            recv: Box::new(lhs),
                            method: name,
                            args,
                        },
                        span: self.span_from(start),
                    };
                } else {
                    lhs = Expr {
                        kind: ExprKind::Field {
                            recv: Box::new(lhs),
                            name,
                        },
                        span: self.span_from(start),
                    };
                }
                continue;
            }
            if self.at_p('(') {
                let args = self.parse_call_args()?;
                lhs = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(lhs),
                        args,
                    },
                    span: self.span_from(start),
                };
                continue;
            }
            if self.at_p('[') {
                self.advance();
                let index = self.parse_expr(true)?;
                if !self.eat_p(']') {
                    return None;
                }
                lhs = Expr {
                    kind: ExprKind::Index {
                        recv: Box::new(lhs),
                        index: Box::new(index),
                    },
                    span: self.span_from(start),
                };
                continue;
            }
            if self.at_p('?') {
                self.advance();
                lhs = Expr {
                    kind: ExprKind::Try {
                        expr: Box::new(lhs),
                    },
                    span: self.span_from(start),
                };
                continue;
            }
            if self.at_kw("as") {
                const CAST_BP: u8 = 24;
                if min_bp > CAST_BP {
                    break;
                }
                self.advance();
                let ty = self.parse_type();
                lhs = Expr {
                    kind: ExprKind::Cast {
                        expr: Box::new(lhs),
                        ty,
                    },
                    span: self.span_from(start),
                };
                continue;
            }
            // Infix operators.
            let Some((op, ntoks)) = self.peek_infix() else {
                break;
            };
            let Some((l_bp, r_bp)) = Self::infix_bp(op) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            for _ in 0..ntoks {
                self.advance();
            }
            if op == ".." || op == "..=" {
                let hi = if self.expr_can_start(allow_struct) {
                    Some(Box::new(self.parse_bp(r_bp, allow_struct)?))
                } else {
                    None
                };
                lhs = Expr {
                    kind: ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                    },
                    span: self.span_from(start),
                };
                continue;
            }
            let rhs = self.parse_bp(r_bp, allow_struct)?;
            let kind = if op == "="
                || op.len() >= 2 && op.ends_with('=') && Self::infix_bp(op).map(|b| b.0) == Some(2)
            {
                ExprKind::Assign {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    op,
                }
            } else {
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            };
            lhs = Expr {
                kind,
                span: self.span_from(start),
            };
        }
        Some(lhs)
    }

    /// Whether the current token can begin an expression (used to decide
    /// whether an open range `x..` has an upper bound).
    fn expr_can_start(&self, allow_struct: bool) -> bool {
        match self.peek().map(|t| &t.kind) {
            Some(Pk::Ident(s)) => !matches!(s.as_str(), "in" | "else" | "where" | "as"),
            Some(Pk::Num(_) | Pk::Str | Pk::Char | Pk::Lifetime) => true,
            Some(
                Pk::P('(')
                | Pk::P('[')
                | Pk::P('&')
                | Pk::P('*')
                | Pk::P('!')
                | Pk::P('-')
                | Pk::P('|'),
            ) => true,
            Some(Pk::P('{')) => allow_struct,
            Some(Pk::Op("&&") | Pk::Op("||")) => true,
            _ => false,
        }
    }

    fn parse_call_args(&mut self) -> Option<Vec<Expr>> {
        if !self.eat_p('(') {
            return None;
        }
        let mut args = Vec::new();
        loop {
            if self.eat_p(')') {
                return Some(args);
            }
            self.peek()?;
            let start = self.here();
            match self.parse_expr(true) {
                Some(e) => args.push(e),
                None => {
                    // Recover to the next argument boundary.
                    self.skips += 1;
                    let mut depth = 0i32;
                    loop {
                        match self.peek().map(|t| t.kind.clone()) {
                            None => return None,
                            Some(Pk::P('(' | '[' | '{')) => {
                                depth += 1;
                                self.advance();
                            }
                            Some(Pk::P(')')) if depth == 0 => break,
                            Some(Pk::P(')' | ']' | '}')) => {
                                depth -= 1;
                                self.advance();
                            }
                            Some(Pk::P(',')) if depth == 0 => break,
                            Some(_) => self.advance(),
                        }
                    }
                    args.push(Expr {
                        kind: ExprKind::Unknown,
                        span: self.span_from(start),
                    });
                }
            }
            if !self.eat_p(',') && !self.at_p(')') {
                return None;
            }
        }
    }

    fn parse_prefix(&mut self, allow_struct: bool) -> Option<Expr> {
        const PREFIX_BP: u8 = 25;
        let start = self.here();
        let done = |p: &mut Self, kind| {
            Some(Expr {
                kind,
                span: p.span_from(start),
            })
        };
        match self.peek().map(|t| t.kind.clone())? {
            Pk::P('&') => {
                self.advance();
                self.eat_kw("mut");
                let e = self.parse_bp(PREFIX_BP, allow_struct)?;
                done(self, ExprKind::Unary { expr: Box::new(e) })
            }
            Pk::Op("&&") => {
                self.advance();
                self.eat_kw("mut");
                let e = self.parse_bp(PREFIX_BP, allow_struct)?;
                done(self, ExprKind::Unary { expr: Box::new(e) })
            }
            Pk::P('*') | Pk::P('!') | Pk::P('-') => {
                self.advance();
                let e = self.parse_bp(PREFIX_BP, allow_struct)?;
                done(self, ExprKind::Unary { expr: Box::new(e) })
            }
            Pk::Op("..") | Pk::Op("..=") => {
                // Range-to: `..n` / `..=n` / bare `..`.
                self.advance();
                let hi = if self.expr_can_start(allow_struct) {
                    Some(Box::new(self.parse_bp(5, allow_struct)?))
                } else {
                    None
                };
                done(self, ExprKind::Range { lo: None, hi })
            }
            Pk::Num(n) => {
                self.advance();
                done(self, ExprKind::Lit(Lit::Num(n)))
            }
            Pk::Str => {
                self.advance();
                done(self, ExprKind::Lit(Lit::Str))
            }
            Pk::Char => {
                self.advance();
                done(self, ExprKind::Lit(Lit::Char))
            }
            Pk::Lifetime => {
                // Loop label: `'outer: loop { … }`.
                self.advance();
                if !self.eat_p(':') {
                    return None;
                }
                self.parse_prefix(allow_struct)
            }
            Pk::P('|') | Pk::Op("||") => self.parse_closure(),
            Pk::P('(') => {
                self.advance();
                if self.eat_p(')') {
                    return done(self, ExprKind::Tuple(Vec::new()));
                }
                let first = self.parse_expr(true)?;
                if self.eat_p(')') {
                    return Some(first); // plain parenthesization
                }
                let mut elems = vec![first];
                while self.eat_p(',') {
                    if self.at_p(')') {
                        break;
                    }
                    elems.push(self.parse_expr(true)?);
                }
                if !self.eat_p(')') {
                    return None;
                }
                done(self, ExprKind::Tuple(elems))
            }
            Pk::P('[') => {
                self.advance();
                if self.eat_p(']') {
                    return done(self, ExprKind::Array(Vec::new()));
                }
                let first = self.parse_expr(true)?;
                if self.eat_p(';') {
                    let _len = self.parse_expr(true)?;
                    if !self.eat_p(']') {
                        return None;
                    }
                    return done(self, ExprKind::Array(vec![first]));
                }
                let mut elems = vec![first];
                while self.eat_p(',') {
                    if self.at_p(']') {
                        break;
                    }
                    elems.push(self.parse_expr(true)?);
                }
                if !self.eat_p(']') {
                    return None;
                }
                done(self, ExprKind::Array(elems))
            }
            Pk::P('{') => {
                let b = self.parse_block()?;
                done(self, ExprKind::Block(b))
            }
            Pk::P('#') => {
                // Attribute on an expression; skip and retry.
                let mut sink = Vec::new();
                self.parse_attr(&mut sink)?;
                self.parse_prefix(allow_struct)
            }
            Pk::Ident(id) => match id.as_str() {
                "true" | "false" => {
                    self.advance();
                    done(self, ExprKind::Lit(Lit::Bool(id == "true")))
                }
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "while" => {
                    self.advance();
                    let cond = self.parse_expr(false)?;
                    let body = self.parse_block()?;
                    done(
                        self,
                        ExprKind::While {
                            cond: Box::new(cond),
                            body,
                        },
                    )
                }
                "loop" => {
                    self.advance();
                    let body = self.parse_block()?;
                    done(self, ExprKind::Loop { body })
                }
                "for" => {
                    self.advance();
                    let pat = self.parse_pat()?;
                    let names = pat.bound_names();
                    if !self.eat_kw("in") {
                        return None;
                    }
                    let iter = self.parse_expr(false)?;
                    let body = self.parse_block()?;
                    done(
                        self,
                        ExprKind::ForLoop {
                            names,
                            iter: Box::new(iter),
                            body,
                        },
                    )
                }
                "return" => {
                    self.advance();
                    let v = if self.expr_can_start(allow_struct) {
                        Some(Box::new(self.parse_expr(allow_struct)?))
                    } else {
                        None
                    };
                    done(self, ExprKind::Jump(v))
                }
                "break" => {
                    self.advance();
                    if matches!(self.peek().map(|t| &t.kind), Some(Pk::Lifetime)) {
                        self.advance();
                    }
                    let v = if self.expr_can_start(allow_struct) {
                        Some(Box::new(self.parse_expr(allow_struct)?))
                    } else {
                        None
                    };
                    done(self, ExprKind::Jump(v))
                }
                "continue" => {
                    self.advance();
                    if matches!(self.peek().map(|t| &t.kind), Some(Pk::Lifetime)) {
                        self.advance();
                    }
                    done(self, ExprKind::Jump(None))
                }
                "let" => {
                    // `let <pat> = expr` inside an if/while condition.
                    self.advance();
                    let pat = self.parse_pat()?;
                    let names = pat.bound_names();
                    if !self.eat_p('=') {
                        return None;
                    }
                    let e = self.parse_bp(9, false)?;
                    done(
                        self,
                        ExprKind::LetCond {
                            names,
                            expr: Box::new(e),
                        },
                    )
                }
                "move" => {
                    self.advance();
                    if self.at_p('|') || self.at_op("||") {
                        self.parse_closure()
                    } else {
                        // `async move { … }` tail — treat as a block.
                        let b = self.parse_block()?;
                        done(self, ExprKind::Block(b))
                    }
                }
                "unsafe" | "async" => {
                    self.advance();
                    self.eat_kw("move");
                    if self.at_p('{') {
                        let b = self.parse_block()?;
                        done(self, ExprKind::Block(b))
                    } else {
                        self.parse_prefix(allow_struct)
                    }
                }
                _ => {
                    self.advance();
                    let mut segs = vec![id];
                    while self.at_op("::") {
                        if matches!(self.nth_kind(1), Some(Pk::P('<'))) {
                            self.advance();
                            self.skip_generics(None)?;
                            continue;
                        }
                        self.advance();
                        segs.push(self.eat_ident()?);
                    }
                    if self.at_p('!') && matches!(self.nth_kind(1), Some(Pk::P('(' | '[' | '{'))) {
                        self.advance();
                        let name = segs.last().cloned().unwrap_or_default();
                        let args = self.parse_macro_args()?;
                        return done(self, ExprKind::MacroCall { name, args });
                    }
                    if allow_struct && self.at_p('{') && self.looks_like_struct_lit() {
                        let fields = self.parse_struct_lit_fields()?;
                        return done(self, ExprKind::StructLit { path: segs, fields });
                    }
                    done(self, ExprKind::Path(segs))
                }
            },
            _ => None,
        }
    }

    fn parse_closure(&mut self) -> Option<Expr> {
        let start = self.here();
        let mut params = Vec::new();
        if self.eat_op("||") {
            // no parameters
        } else {
            if !self.eat_p('|') {
                return None;
            }
            loop {
                if self.eat_p('|') {
                    break;
                }
                self.peek()?;
                // Single (non-or) patterns only: the closing `|` of the
                // parameter list must not read as an or-pattern bar.
                let pat = self.parse_pat_single()?;
                params.extend(pat.bound_names());
                if self.eat_p(':') {
                    self.parse_type();
                }
                if !self.eat_p(',') && !self.at_p('|') {
                    return None;
                }
            }
        }
        let body = if self.eat_op("->") {
            self.parse_type();
            let b = self.parse_block()?;
            Expr {
                span: b.span,
                kind: ExprKind::Block(b),
            }
        } else {
            self.parse_bp(2, true)?
        };
        Some(Expr {
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            span: self.span_from(start),
        })
    }

    fn parse_if(&mut self) -> Option<Expr> {
        let start = self.here();
        if !self.eat_kw("if") {
            return None;
        }
        let cond = self.parse_expr(false)?;
        let then = self.parse_block()?;
        let els = if self.eat_kw("else") {
            if self.at_kw("if") {
                Some(Box::new(self.parse_if()?))
            } else {
                let b = self.parse_block()?;
                Some(Box::new(Expr {
                    span: b.span,
                    kind: ExprKind::Block(b),
                }))
            }
        } else {
            None
        };
        Some(Expr {
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
            span: self.span_from(start),
        })
    }

    fn parse_match(&mut self) -> Option<Expr> {
        let start = self.here();
        if !self.eat_kw("match") {
            return None;
        }
        let scrutinee = self.parse_expr(false)?;
        if !self.eat_p('{') {
            return None;
        }
        let mut arms = Vec::new();
        loop {
            if self.eat_p('}') {
                break;
            }
            if self.peek().is_none() {
                break;
            }
            let arm_start = self.here();
            let parsed = (|| -> Option<Arm> {
                let mut sink = Vec::new();
                while self.at_p('#') {
                    self.parse_attr(&mut sink)?;
                }
                let pat = self.parse_pat()?;
                let guard = if self.eat_kw("if") {
                    Some(self.parse_bp(0, false)?)
                } else {
                    None
                };
                if !self.eat_op("=>") {
                    return None;
                }
                // A block body ends the arm: the next arm's tuple
                // pattern must not read as a call on the block, so skip
                // the Pratt postfix loop here.
                let body = if self.at_p('{') {
                    let bstart = self.here();
                    let b = self.parse_block()?;
                    Expr {
                        kind: ExprKind::Block(b),
                        span: self.span_from(bstart),
                    }
                } else {
                    self.parse_expr(true)?
                };
                self.eat_p(',');
                Some(Arm {
                    pat,
                    guard,
                    body,
                    span: self.span_from(arm_start),
                })
            })();
            match parsed {
                Some(arm) => arms.push(arm),
                None => {
                    // Recover to the next arm boundary.
                    self.skips += 1;
                    let mut depth = 0i32;
                    loop {
                        match self.peek().map(|t| t.kind.clone()) {
                            None => break,
                            Some(Pk::P('(' | '[' | '{')) => {
                                depth += 1;
                                self.advance();
                            }
                            Some(Pk::P('}')) if depth == 0 => break,
                            Some(Pk::P(')' | ']' | '}')) => {
                                depth -= 1;
                                self.advance();
                            }
                            Some(Pk::P(',')) if depth == 0 => {
                                self.advance();
                                break;
                            }
                            Some(_) => self.advance(),
                        }
                    }
                }
            }
        }
        Some(Expr {
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
            span: self.span_from(start),
        })
    }

    /// After a path, decides whether `{` opens a struct literal (vs a
    /// block following the expression, e.g. a match body).
    fn looks_like_struct_lit(&self) -> bool {
        debug_assert!(self.at_p('{'));
        matches!(
            (self.nth_kind(1), self.nth_kind(2)),
            (Some(Pk::P('}')), _)
                | (Some(Pk::Op("..")), _)
                | (Some(Pk::Ident(_)), Some(Pk::P(':' | ',' | '}')))
        )
    }

    fn parse_struct_lit_fields(&mut self) -> Option<Vec<(String, Option<Expr>, u32)>> {
        if !self.eat_p('{') {
            return None;
        }
        let mut fields = Vec::new();
        loop {
            if self.eat_p('}') {
                return Some(fields);
            }
            self.peek()?;
            if self.eat_op("..") {
                // Functional update base.
                self.parse_expr(true)?;
                continue;
            }
            let line = self.here().0;
            let name = self.eat_ident()?;
            let value = if self.eat_p(':') {
                Some(self.parse_expr(true)?)
            } else {
                None
            };
            fields.push((name, value, line));
            if !self.eat_p(',') && !self.at_p('}') {
                return None;
            }
        }
    }

    /// Parses macro-call arguments best-effort: each comma-separated
    /// piece is tried as an expression; pieces that are not expressions
    /// (patterns in `matches!`, format strings with captures, macro
    /// syntax) are skipped. `{}`-delimited macro bodies are skipped
    /// whole.
    fn parse_macro_args(&mut self) -> Option<Vec<Expr>> {
        match self.peek().map(|t| t.kind.clone())? {
            Pk::P('{') => {
                self.skip_balanced(None)?;
                Some(Vec::new())
            }
            Pk::P(open @ ('(' | '[')) => {
                let close = if open == '(' { ')' } else { ']' };
                self.advance();
                let mut args = Vec::new();
                loop {
                    if self.eat_p(close) {
                        return Some(args);
                    }
                    self.peek()?;
                    let save = self.pos;
                    let mut ok = false;
                    if let Some(e) = self.parse_expr(true) {
                        if self.at_p(',') || self.at_p(close) {
                            args.push(e);
                            ok = true;
                        }
                    }
                    if !ok {
                        // Not an expression — skip this piece verbatim.
                        self.pos = save;
                        let mut depth = 0i32;
                        loop {
                            match self.peek().map(|t| t.kind.clone()) {
                                None => return None,
                                Some(Pk::P('(' | '[' | '{')) => {
                                    depth += 1;
                                    self.advance();
                                }
                                Some(Pk::P(c)) if c == close && depth == 0 => break,
                                Some(Pk::P(')' | ']' | '}')) => {
                                    depth -= 1;
                                    self.advance();
                                }
                                Some(Pk::P(',')) if depth == 0 => break,
                                Some(_) => self.advance(),
                            }
                        }
                    }
                    if !self.eat_p(',') && !self.at_p(close) {
                        return None;
                    }
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        parse_file(&lex(src))
    }

    fn only_fn(file: &File) -> &Func {
        match &file.items[0].kind {
            ItemKind::Fn(f) => f,
            other => panic!("expected fn, got {other:?}"),
        }
    }

    #[test]
    fn simple_fn_roundtrips() {
        let f = parse("pub fn add(a: u64, b: u64) -> u64 { a + b }");
        assert_eq!(f.recovered_skips, 0);
        let func = only_fn(&f);
        assert_eq!(func.name, "add");
        assert_eq!(func.params.len(), 2);
        assert_eq!(func.params[0].name.as_deref(), Some("a"));
        assert!(func.ret.as_ref().unwrap().mentions(&["u64"]));
        assert_eq!(func.body.as_ref().unwrap().stmts.len(), 1);
    }

    #[test]
    fn method_chains_and_turbofish() {
        let f = parse("fn f() { let v = xs.iter().map(|x| x + 1).collect::<Vec<u64>>(); }");
        assert_eq!(f.recovered_skips, 0);
        let func = only_fn(&f);
        let StmtKind::Let { names, init, .. } = &func.body.as_ref().unwrap().stmts[0].kind else {
            panic!("expected let");
        };
        assert_eq!(names, &["v"]);
        let Some(Expr {
            kind: ExprKind::MethodCall { method, .. },
            ..
        }) = init.as_ref()
        else {
            panic!("expected method call, got {init:?}");
        };
        assert_eq!(method, "collect");
    }

    #[test]
    fn match_arms_and_wildcards() {
        let f = parse(
            "fn f(k: QueueKind) -> u32 { match k { QueueKind::Wheel => 1, QueueKind::Heap if x > 2 => 2, _ => 0 } }",
        );
        assert_eq!(f.recovered_skips, 0);
        let func = only_fn(&f);
        let StmtKind::Expr(Expr {
            kind: ExprKind::Match { arms, .. },
            ..
        }) = &func.body.as_ref().unwrap().stmts[0].kind
        else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        assert!(!arms[0].pat.is_catch_all());
        assert!(arms[1].guard.is_some());
        assert!(arms[2].pat.is_catch_all());
    }

    #[test]
    fn struct_literal_vs_match_block() {
        // `match x { … }` must not parse `x {` as a struct literal, while
        // explicit literals still parse.
        let f = parse("fn f() { let p = Point { x: 1, y: 2 }; match p { _ => () } }");
        assert_eq!(f.recovered_skips, 0);
    }

    #[test]
    fn generics_vs_shift_and_comparison() {
        let f = parse(
            "fn f() { let a = x << 2; let b = c < d; let m = BTreeMap::<u64, Vec<u8>>::new(); }",
        );
        assert_eq!(f.recovered_skips, 0);
        let func = only_fn(&f);
        assert_eq!(func.body.as_ref().unwrap().stmts.len(), 3);
    }

    #[test]
    fn if_let_chains_and_while_let() {
        let f = parse(
            "fn f() { if let Some(x) = a { g(x); } while let Some(y) = it.next() { h(y); } }",
        );
        assert_eq!(f.recovered_skips, 0);
    }

    #[test]
    fn for_loop_binds_tuple_names() {
        let f = parse("fn f() { for (k, v) in map.iter() { use_it(k, v); } }");
        let func = only_fn(&f);
        let StmtKind::Expr(Expr {
            kind: ExprKind::ForLoop { names, .. },
            ..
        }) = &func.body.as_ref().unwrap().stmts[0].kind
        else {
            panic!("expected for loop");
        };
        assert_eq!(names, &["k", "v"]);
    }

    #[test]
    fn unparseable_item_recovers_to_next() {
        let f = parse("fn good() {} yield wat !! ; fn also_good() {}");
        assert!(f.recovered_skips > 0);
        let names: Vec<_> = f
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(func) => Some(func.name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["good", "also_good"]);
    }

    #[test]
    fn enum_and_impl_surface() {
        let f = parse(
            "pub enum Kind { A, B(u32), C { x: u64 } } impl Kind { pub fn f(&self) -> u32 { 0 } }",
        );
        assert_eq!(f.recovered_skips, 0);
        let ItemKind::Enum(e) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(
            e.variants.iter().map(|v| v.0.as_str()).collect::<Vec<_>>(),
            vec!["A", "B", "C"]
        );
        let ItemKind::Impl(i) = &f.items[1].kind else {
            panic!()
        };
        assert_eq!(i.ty_name, "Kind");
        assert_eq!(i.items.len(), 1);
    }

    #[test]
    fn spans_cover_statements() {
        let src = "fn f() {\n    let x = 1;\n    let y = 2;\n}\n";
        let f = parse(src);
        let func = only_fn(&f);
        let stmts = &func.body.as_ref().unwrap().stmts;
        assert_eq!(stmts[0].span.line, 2);
        assert_eq!(stmts[1].span.line, 3);
        assert_eq!(f.items[0].span.line, 1);
        assert_eq!(f.items[0].span.end_line, 4);
    }

    #[test]
    fn macro_args_parse_best_effort() {
        let f = parse("fn f() { assert_eq!(a.len(), 3); let m = matches!(k, Kind::A | Kind::B); }");
        assert_eq!(f.recovered_skips, 0, "macro pieces must not count as skips");
    }

    #[test]
    fn raw_string_in_match_guard() {
        let f = parse(
            r###"fn f(s: &str) -> u32 { match s { x if x == r#"we{i}rd"# => 1, _ => 0 } }"###,
        );
        assert_eq!(f.recovered_skips, 0);
    }

    #[test]
    fn closures_nest() {
        let f = parse("fn f() { let g = |a: u64| move |b| a + b; let h = g(1)(2); }");
        assert_eq!(f.recovered_skips, 0);
    }

    #[test]
    fn struct_fields_capture_types() {
        let f = parse("pub struct S { pub map: BTreeMap<u64, Vec<Entry>>, n: usize }");
        let ItemKind::Struct(s) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(s.fields.len(), 2);
        assert!(s.fields[0].ty.mentions(&["BTreeMap", "Entry"]));
    }

    #[test]
    fn trait_default_methods_are_kept() {
        let f =
            parse("pub trait T { fn id(&self) -> u32; fn double(&self) -> u32 { self.id() * 2 } }");
        let ItemKind::Impl(i) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(i.items.len(), 2);
    }

    #[test]
    fn cfg_test_mod_is_flagged() {
        let f = parse("#[cfg(test)] mod tests { fn t() {} } mod real { fn r() {} }");
        let ItemKind::Mod(m) = &f.items[0].kind else {
            panic!()
        };
        assert!(m.cfg_test);
        let ItemKind::Mod(m2) = &f.items[1].kind else {
            panic!()
        };
        assert!(!m2.cfg_test);
    }
}
