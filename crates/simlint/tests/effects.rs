//! Pins the write-effect engine's computed summaries on a small
//! fixture workspace: the golden rendering below is the effect set the
//! engine is *supposed* to compute, so any change to classification,
//! composition, or the fixpoint shows up as a readable string diff.
//! Also the regression home for the dropped-symbols accounting: a
//! planted same-name/different-arity pair must be counted and surfaced
//! in both report renderings instead of silently vanishing.

use std::fs;
use std::path::PathBuf;

use mlb_simlint::effects::{self, StateModel};
use mlb_simlint::lexer::lex;
use mlb_simlint::parser::parse_file;
use mlb_simlint::symbols::parse_state_annotations;
use mlb_simlint::{lint_workspace, lint_workspace_full};

/// The fixture workspace the snapshot is computed over: one observer
/// type (built-in), one annotated observer, sim state reached through
/// `self`, a `&mut` parameter, a helper hop, and a process global.
const FIXTURE: &str = "\
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL: AtomicU64 = AtomicU64::new(0);

pub struct Tracer {
    pub events: u64,
}

// simlint::state(observer)
pub struct Probe {
    pub queue_len: u64,
}

pub struct Gauge {
    pub depth: u64,
}

pub struct Sys {
    pub tracer: Tracer,
    pub gauge: Gauge,
    pub steps: u64,
}

impl Sys {
    pub fn advance(&mut self) {
        self.steps += 1;
    }

    pub fn note(&mut self) {
        self.tracer.events += 1;
    }
}

pub fn bump(g: &mut Gauge) {
    g.depth += 1;
}

pub fn relay(g: &mut Gauge) {
    bump(g);
}

pub fn sample(p: &mut Probe) {
    p.queue_len += 1;
}

pub fn record() {
    TOTAL.fetch_add(1, Ordering::SeqCst);
}

pub fn twice(x: u64) -> u64 {
    x * 2
}
";

#[test]
fn effect_summaries_match_the_golden_snapshot() {
    let tokens = lex(FIXTURE);
    let file = parse_file(&tokens);
    let (anns, malformed) = parse_state_annotations(&tokens);
    assert!(malformed.is_empty(), "fixture annotations must parse");

    let inputs = [(&file, &anns)];
    let model = StateModel::build(&inputs);
    let table = effects::build(&inputs, &model);

    // What each line asserts:
    //   advance — a direct `self` field write is a sim effect.
    //   bump    — a `&mut` parameter write names the projected field.
    //   note    — writes landing on an observer-typed field vanish.
    //   record  — a SCREAMING static mutation is a static effect.
    //   relay   — effects flow through a helper call, field intact.
    //   sample  — the `simlint::state(observer)` annotation erases the
    //             whole parameter's writes, same as a built-in type.
    //   twice   — a value-only function is pure.
    let golden = "\
advance: self.steps
bump: param 0.depth
note: pure
record: static TOTAL
relay: param 0.depth
sample: pure
twice: pure
";
    assert_eq!(table.render(), golden, "effect summaries drifted");
}

/// Builds a one-crate workspace whose lib defines `poll` twice with
/// different arities — the interprocedural layers cannot key such a
/// name, so both definitions are excluded from summaries.
fn scaffold_conflict() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("dropped-syms");
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(root.join("crates/sim/src")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/sim\"]\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"mlb-simkernel\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "#![forbid(unsafe_code)]\n//! Scaffold crate with a planted arity conflict.\n\n\
         pub mod a {\n    pub fn poll(now_us: u64) -> u64 {\n        now_us\n    }\n}\n\n\
         pub mod b {\n    pub fn poll(now_us: u64, budget: u64) -> u64 {\n        now_us + budget\n    }\n}\n",
    )
    .unwrap();
    root
}

#[test]
fn conflicting_arity_symbols_are_counted_not_silently_dropped() {
    let root = scaffold_conflict();

    let (report, _) = lint_workspace_full(&root).unwrap();
    assert!(
        report.dropped_symbols >= 1,
        "planted arity conflict was not counted: {}",
        report.dropped_symbols
    );

    // Both renderings surface the count: JSON unconditionally (so a
    // dashboard can trend it), human only when non-zero.
    let json = report.render_json();
    assert!(
        json.contains(&format!("\"dropped_symbols\": {},", report.dropped_symbols)),
        "JSON lost the count: {json}"
    );
    let human = report.render_human();
    assert!(
        human.contains("excluded from interprocedural summaries"),
        "human rendering lost the note: {human}"
    );

    // Sanity: the conflict itself is not a finding — the exclusion is
    // an analysis-coverage fact, not a lint violation.
    assert!(lint_workspace(&root).unwrap().is_clean());

    fs::remove_dir_all(&root).unwrap();
}
