//! The parser's survival contract: it never panics, recovers to the
//! next item on garbage, and digests every real file in this workspace
//! without losing a single construct. The adversarial half feeds it
//! syntax chosen to break hand-rolled parsers (deep nesting, stray
//! closers, half-finished items); the corpus half proves the recovery
//! counter stays at zero on the code it actually lints day to day.

use std::path::Path;

use mlb_simlint::ast::{self, File};
use mlb_simlint::lexer;
use mlb_simlint::parser;
use mlb_simlint::workspace::Workspace;

fn parse(src: &str) -> File {
    parser::parse_file(&lexer::lex(src))
}

fn fn_names(file: &File) -> Vec<String> {
    let mut names = Vec::new();
    ast::walk_fns(file, &mut |_impl_name, f| names.push(f.name.clone()));
    names
}

#[test]
fn empty_and_whitespace_only_sources_parse() {
    assert!(parse("").items.is_empty());
    assert!(parse("\n\n   \t\n").items.is_empty());
    assert!(parse("// just a comment\n").items.is_empty());
}

#[test]
fn pathological_nesting_does_not_overflow_the_stack() {
    // Parenthesis nesting far past MAX_DEPTH: the parser must bail out
    // gracefully (Unknown / recovery), never recurse to a crash.
    let deep = format!(
        "pub fn f() -> u64 {{ {}1{} }}\n",
        "(".repeat(5_000),
        ")".repeat(5_000)
    );
    let file = parse(&deep);
    assert_eq!(file.items.len(), 1);

    let blocks = format!(
        "pub fn g() {{ {} {} }}\n",
        "{".repeat(5_000),
        "}".repeat(5_000)
    );
    assert_eq!(parse(&blocks).items.len(), 1);
}

#[test]
fn stray_closers_and_unclosed_openers_recover() {
    // Unbalanced delimiters in one item must not eat the next item.
    for src in [
        "pub fn bad() { let x = (1; }\npub fn good() {}\n",
        "pub fn bad() { ) ] } }\npub fn good() {}\n",
        "struct Broken { a: , }\npub fn good() {}\n",
        "pub fn bad( { }\npub fn good() {}\n",
    ] {
        let file = parse(src);
        assert!(
            fn_names(&file).iter().any(|n| n == "good"),
            "recovery lost the following item in {src:?}: {file:?}"
        );
    }
}

#[test]
fn adversarial_expression_syntax_parses_without_recovery() {
    // Constructs that trip naive token-pair parsers: shifts vs nested
    // generics, turbofish, or-patterns, labeled loops, raw strings with
    // internal quotes, closures whose pipes look like or-pattern bars.
    let src = r####"
pub fn soup(xs: Vec<Vec<u64>>) -> u64 {
    let a: Vec<Vec<u64>> = Vec::<Vec<u64>>::new();
    let b = 1u64 << 3 >> 1;
    let c = xs.iter().map(|v| v.len() as u64).sum::<u64>();
    let d = if b < c { b } else { c };
    let s = r#"raw " string with )( braces {}"#;
    let t = 'outer: loop {
        match d {
            0 | 1 => break 'outer d,
            n if n > 10 => return n,
            _ => break 'outer n_of(s),
        }
    };
    a.first().map(|v| v.first().copied().unwrap_or(t)).unwrap_or(b)
}

fn n_of(_s: &str) -> u64 {
    0
}
"####;
    let file = parse(src);
    assert_eq!(file.recovered_skips, 0, "recovery on {file:#?}");
    assert_eq!(fn_names(&file).len(), 2);
}

#[test]
fn item_zoo_parses_without_recovery() {
    let src = r#"
#![forbid(unsafe_code)]
//! Module docs.

use std::collections::BTreeMap;

pub const LIMIT_US: u64 = 1_000;
pub static NAME: &str = "zoo";

pub type Table = BTreeMap<u64, u64>;

#[derive(Debug, Clone)]
pub struct Pair<T: Ord, const N: usize> {
    pub left: [T; N],
    right: Option<Box<Pair<T, N>>>,
}

pub enum Verdict {
    Ok,
    Slow { by_us: u64 },
    Failed(u64, &'static str),
}

pub trait Probe {
    fn poke(&mut self) -> Verdict;
    fn name(&self) -> &str {
        "anon"
    }
}

impl<T: Ord + Copy, const N: usize> Probe for Pair<T, N> {
    fn poke(&mut self) -> Verdict {
        Verdict::Ok
    }
}

pub mod inner {
    pub fn visible() -> u64 {
        super::LIMIT_US
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::inner::visible(), 1_000);
    }
}

macro_rules! twice {
    ($e:expr) => {
        $e + $e
    };
}
"#;
    let file = parse(src);
    assert_eq!(file.recovered_skips, 0, "recovery on {file:#?}");
    assert!(file.items.len() >= 9, "lost items: {file:#?}");
}

/// Every real source file in this workspace must parse to a non-empty
/// AST with zero recovery skips — the corpus meta-test that keeps the
/// parser honest as the simulator underneath it grows.
#[test]
fn whole_workspace_round_trips_without_recovery() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::discover(&root).expect("workspace discovery");
    assert!(
        ws.files.len() > 50,
        "suspiciously small corpus: {}",
        ws.files.len()
    );
    let mut parsed = 0usize;
    for sf in &ws.files {
        let src = std::fs::read_to_string(&sf.abs_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", sf.rel_path));
        let file = parse(&src);
        // A file may legitimately hold only docs and inner attributes
        // (e.g. the integration-test host crate root); otherwise an
        // empty AST means the parser lost everything.
        let has_items = {
            const STARTERS: [&str; 13] = [
                "fn",
                "struct",
                "enum",
                "impl",
                "mod",
                "use",
                "trait",
                "type",
                "macro_rules",
                "static",
                "const",
                "pub",
                "extern",
            ];
            lexer::lex(&src).iter().any(|t| {
                matches!(&t.kind, mlb_simlint::lexer::TokenKind::Ident)
                    && STARTERS.contains(&t.text.as_str())
            })
        };
        assert!(
            !file.items.is_empty() || !has_items,
            "{} parsed to an empty AST",
            sf.rel_path
        );
        assert_eq!(
            file.recovered_skips, 0,
            "{} needed parser recovery",
            sf.rel_path
        );
        parsed += 1;
    }
    assert_eq!(parsed, ws.files.len());
}
