//! The fixture corpus contract: every registered rule ships one
//! triggering and one clean snippet under `fixtures/<rule>/`, and each
//! behaves as labeled when linted under its rule's natural context.
//! Adding a rule without fixtures fails the meta-test; a rule whose
//! heuristic rots fails the trigger test.

use std::fs;
use std::path::{Path, PathBuf};

use mlb_simlint::lint_source;
use mlb_simlint::rules::RULES;
use mlb_simlint::workspace::FileRole;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// The lint context each rule's fixtures are evaluated under:
/// (crate name, role, workspace-relative path, is-crate-root).
fn context(rule: &str) -> (&'static str, FileRole, &'static str, bool) {
    match rule {
        "no-wall-clock" | "no-system-io" | "no-hash-order" | "no-ambient-rng" => (
            "mlb-simkernel",
            FileRole::Lib,
            "crates/simkernel/src/fixture.rs",
            false,
        ),
        // The AST/dataflow families run in any sim crate's library code;
        // the match-exhaustive fixtures declare their own `QueueKind` so
        // the single-file symbol table knows the variant set. The shard
        // family shares the same natural habitat.
        "nondet-taint" | "time-unit" | "match-exhaustive" | "shard-cross-thread"
        | "shard-shared-state" | "shard-order-agg" => (
            "mlb-simkernel",
            FileRole::Lib,
            "crates/simkernel/src/fixture.rs",
            false,
        ),
        // The write-effect rules bind sim-crate library code; the
        // fixtures declare their own observer/config types so the
        // single-file state model classifies them.
        "observer-purity" | "frozen-config" => (
            "mlb-ntier",
            FileRole::Lib,
            "crates/ntier/src/fixture.rs",
            false,
        ),
        // panic-hygiene only binds the event-loop hot paths, so the
        // fixture borrows one of their paths.
        "panic-hygiene" => (
            "mlb-ntier",
            FileRole::Lib,
            "crates/ntier/src/system.rs",
            false,
        ),
        "crate-header" => (
            "mlb-simkernel",
            FileRole::Lib,
            "crates/simkernel/src/lib.rs",
            true,
        ),
        "span-attribution" => (
            "mlb-metrics",
            FileRole::Lib,
            "crates/metrics/src/fixture.rs",
            false,
        ),
        "bad-suppression" => (
            "mlb-ntier",
            FileRole::Lib,
            "crates/ntier/src/fixture.rs",
            false,
        ),
        // no-float-accum only binds the telemetry/metrics accumulation
        // paths, so the fixture borrows one of them.
        "no-float-accum" => (
            "mlb-metrics",
            FileRole::Lib,
            "crates/metrics/src/registry.rs",
            false,
        ),
        other => panic!(
            "rule `{other}` has no fixture context — register one here and add \
             fixtures/{other}/{{trigger,clean}}.rs"
        ),
    }
}

fn read(rule: &str, which: &str) -> String {
    let path = fixture_dir().join(rule).join(format!("{which}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("every rule needs {}: {e}", path.display()))
}

#[test]
fn every_rule_has_a_triggering_and_a_clean_fixture() {
    for rule in RULES {
        let dir = fixture_dir().join(rule.name);
        assert!(
            dir.join("trigger.rs").is_file(),
            "rule `{}` lacks fixtures/{}/trigger.rs",
            rule.name,
            rule.name
        );
        assert!(
            dir.join("clean.rs").is_file(),
            "rule `{}` lacks fixtures/{}/clean.rs",
            rule.name,
            rule.name
        );
    }
}

#[test]
fn trigger_fixtures_trigger_their_rule() {
    for rule in RULES {
        let (krate, role, rel, root) = context(rule.name);
        let findings = lint_source(&read(rule.name, "trigger"), krate, role, rel, root);
        assert!(
            findings.iter().any(|f| f.rule == rule.name),
            "fixtures/{}/trigger.rs did not trigger `{}`; findings: {findings:?}",
            rule.name,
            rule.name
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for rule in RULES {
        let (krate, role, rel, root) = context(rule.name);
        let findings = lint_source(&read(rule.name, "clean"), krate, role, rel, root);
        assert!(
            findings.is_empty(),
            "fixtures/{}/clean.rs has findings: {findings:?}",
            rule.name
        );
    }
}

/// Fixtures beyond the mandatory `{trigger,clean}.rs` pair, with the
/// *exact* number of findings of the owning rule each must produce.
/// Exactness matters for the interprocedural ones: a finding per hop
/// (instead of one at the sink) would drown real reports in echoes.
const EXTRA_FIXTURES: [(&str, &str, usize); 10] = [
    ("nondet-taint", "two_hop_trigger", 1),
    ("nondet-taint", "two_hop_clean", 0),
    // A sim-state write laundered through two helper hops reports once,
    // at the outermost observation-gated call.
    ("observer-purity", "two_hop_trigger", 1),
    ("observer-purity", "two_hop_clean", 0),
    // Declared units propagate through function RETURN values.
    ("time-unit", "return_unit_trigger", 1),
    ("time-unit", "return_unit_clean", 0),
    // Write-effect upgrades: a closure writing a capture across a
    // thread boundary, and sim code writing a process global.
    ("shard-cross-thread", "write_capture_trigger", 1),
    ("shard-cross-thread", "write_capture_clean", 0),
    ("shard-shared-state", "static_write_trigger", 1),
    ("shard-shared-state", "static_write_clean", 0),
];

/// Trigger fixtures that must produce *exactly one* finding overall —
/// the violation under test and no collateral noise.
const EXACTLY_ONE: [&str; 3] = ["shard-cross-thread", "shard-order-agg", "observer-purity"];

#[test]
fn extra_fixtures_produce_exact_finding_counts() {
    for (rule, stem, expected) in EXTRA_FIXTURES {
        let (krate, role, rel, root) = context(rule);
        let findings = lint_source(&read(rule, stem), krate, role, rel, root);
        let hits = findings.iter().filter(|f| f.rule == rule).count();
        assert_eq!(
            hits, expected,
            "fixtures/{rule}/{stem}.rs: want exactly {expected} `{rule}` finding(s), got {findings:?}"
        );
        assert_eq!(
            findings.len(),
            expected,
            "fixtures/{rule}/{stem}.rs must not raise other rules: {findings:?}"
        );
    }
}

#[test]
fn single_violation_triggers_stay_single() {
    for rule in EXACTLY_ONE {
        let (krate, role, rel, root) = context(rule);
        let findings = lint_source(&read(rule, "trigger"), krate, role, rel, root);
        assert_eq!(
            findings.len(),
            1,
            "fixtures/{rule}/trigger.rs must produce exactly one finding: {findings:?}"
        );
        assert_eq!(findings[0].rule, rule, "{findings:?}");
    }
}

/// Every `.rs` file under `fixtures/` must be referenced by a test —
/// either a rule's `{trigger,clean}.rs` pair or an `EXTRA_FIXTURES`
/// row. An orphaned fixture is dead weight that silently stops
/// asserting anything.
#[test]
fn every_fixture_file_is_referenced() {
    for dir in fs::read_dir(fixture_dir()).expect("fixtures dir") {
        let dir = dir.unwrap();
        let rule = dir.file_name().into_string().unwrap();
        assert!(
            RULES.iter().any(|r| r.name == rule),
            "fixtures/{rule}/ does not match any registered rule"
        );
        for file in fs::read_dir(dir.path()).unwrap() {
            let name = file.unwrap().file_name().into_string().unwrap();
            let stem = name.strip_suffix(".rs").unwrap_or_else(|| {
                panic!("fixtures/{rule}/{name} is not a .rs file");
            });
            let referenced = stem == "trigger"
                || stem == "clean"
                || EXTRA_FIXTURES
                    .iter()
                    .any(|(r, s, _)| *r == rule && *s == stem);
            assert!(
                referenced,
                "fixtures/{rule}/{name} is not referenced by any fixture test; \
                 add it to EXTRA_FIXTURES or delete it"
            );
        }
    }
}
