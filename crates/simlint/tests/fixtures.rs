//! The fixture corpus contract: every registered rule ships one
//! triggering and one clean snippet under `fixtures/<rule>/`, and each
//! behaves as labeled when linted under its rule's natural context.
//! Adding a rule without fixtures fails the meta-test; a rule whose
//! heuristic rots fails the trigger test.

use std::fs;
use std::path::{Path, PathBuf};

use mlb_simlint::lint_source;
use mlb_simlint::rules::RULES;
use mlb_simlint::workspace::FileRole;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// The lint context each rule's fixtures are evaluated under:
/// (crate name, role, workspace-relative path, is-crate-root).
fn context(rule: &str) -> (&'static str, FileRole, &'static str, bool) {
    match rule {
        "no-wall-clock" | "no-system-io" | "no-hash-order" | "no-ambient-rng" => (
            "mlb-simkernel",
            FileRole::Lib,
            "crates/simkernel/src/fixture.rs",
            false,
        ),
        // The AST/dataflow families run in any sim crate's library code;
        // the match-exhaustive fixtures declare their own `QueueKind` so
        // the single-file symbol table knows the variant set.
        "nondet-taint" | "time-unit" | "match-exhaustive" => (
            "mlb-simkernel",
            FileRole::Lib,
            "crates/simkernel/src/fixture.rs",
            false,
        ),
        // panic-hygiene only binds the event-loop hot paths, so the
        // fixture borrows one of their paths.
        "panic-hygiene" => (
            "mlb-ntier",
            FileRole::Lib,
            "crates/ntier/src/system.rs",
            false,
        ),
        "crate-header" => (
            "mlb-simkernel",
            FileRole::Lib,
            "crates/simkernel/src/lib.rs",
            true,
        ),
        "span-attribution" => (
            "mlb-metrics",
            FileRole::Lib,
            "crates/metrics/src/fixture.rs",
            false,
        ),
        "bad-suppression" => (
            "mlb-ntier",
            FileRole::Lib,
            "crates/ntier/src/fixture.rs",
            false,
        ),
        // no-float-accum only binds the telemetry/metrics accumulation
        // paths, so the fixture borrows one of them.
        "no-float-accum" => (
            "mlb-metrics",
            FileRole::Lib,
            "crates/metrics/src/registry.rs",
            false,
        ),
        other => panic!(
            "rule `{other}` has no fixture context — register one here and add \
             fixtures/{other}/{{trigger,clean}}.rs"
        ),
    }
}

fn read(rule: &str, which: &str) -> String {
    let path = fixture_dir().join(rule).join(format!("{which}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("every rule needs {}: {e}", path.display()))
}

#[test]
fn every_rule_has_a_triggering_and_a_clean_fixture() {
    for rule in RULES {
        let dir = fixture_dir().join(rule.name);
        assert!(
            dir.join("trigger.rs").is_file(),
            "rule `{}` lacks fixtures/{}/trigger.rs",
            rule.name,
            rule.name
        );
        assert!(
            dir.join("clean.rs").is_file(),
            "rule `{}` lacks fixtures/{}/clean.rs",
            rule.name,
            rule.name
        );
    }
}

#[test]
fn trigger_fixtures_trigger_their_rule() {
    for rule in RULES {
        let (krate, role, rel, root) = context(rule.name);
        let findings = lint_source(&read(rule.name, "trigger"), krate, role, rel, root);
        assert!(
            findings.iter().any(|f| f.rule == rule.name),
            "fixtures/{}/trigger.rs did not trigger `{}`; findings: {findings:?}",
            rule.name,
            rule.name
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    for rule in RULES {
        let (krate, role, rel, root) = context(rule.name);
        let findings = lint_source(&read(rule.name, "clean"), krate, role, rel, root);
        assert!(
            findings.is_empty(),
            "fixtures/{}/clean.rs has findings: {findings:?}",
            rule.name
        );
    }
}
