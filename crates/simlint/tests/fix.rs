//! End-to-end `--fix` semantics against a real workspace on disk: stale
//! suppressions are findings (the lint run fails), one fix pass repairs
//! everything mechanical, the re-lint comes back clean, and a second
//! pass is a no-op. This pins the CLI exit-code contract the fix mode
//! rides on.

use std::fs;
use std::path::PathBuf;

use mlb_simlint::fix::apply_fixes;
use mlb_simlint::{lint_workspace, lint_workspace_full};

/// Builds a one-crate workspace whose lib.rs has a missing
/// `#![forbid(unsafe_code)]` header and one stale suppression.
fn scaffold(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fixws-{tag}"));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(root.join("crates/sim/src")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/sim\"]\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"mlb-simkernel\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "//! Scaffold crate.\n\n\
         // simlint::allow(no-wall-clock): nothing here reads a clock anymore\n\
         pub fn step(now_us: u64) -> u64 {\n    now_us + 1\n}\n",
    )
    .unwrap();
    root
}

#[test]
fn stale_suppressions_fail_the_lint_and_fix_repairs_them() {
    let root = scaffold("main");

    // Before the fix: the stale allow and the missing header are both
    // findings, so the report that drives the CLI exit code is dirty.
    let report = lint_workspace(&root).unwrap();
    assert!(!report.is_clean(), "stale suppression must fail the run");
    let json = report.render_json();
    assert!(
        json.contains("bad-suppression"),
        "missing stale finding: {json}"
    );
    assert!(
        json.contains("crate-header"),
        "missing header finding: {json}"
    );

    // One fix pass repairs both.
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.files_changed, 1);
    assert_eq!(summary.suppressions_removed, 1);
    assert_eq!(summary.headers_added, 1);

    let fixed = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    assert!(fixed.starts_with("#![forbid(unsafe_code)]\n"), "{fixed}");
    assert!(!fixed.contains("simlint::allow"), "{fixed}");

    // The re-lint (what the CLI runs after fixing) is clean, and a
    // second fix pass has nothing left to do.
    assert!(lint_workspace(&root).unwrap().is_clean());
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    assert_eq!(apply_fixes(&fixes).unwrap().files_changed, 0);

    fs::remove_dir_all(&root).unwrap();
}

/// Reads every file under `root` into a path→contents map so two tree
/// states can be compared exactly.
fn tree_snapshot(root: &PathBuf) -> std::collections::BTreeMap<PathBuf, String> {
    fn walk(dir: &PathBuf, out: &mut std::collections::BTreeMap<PathBuf, String>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, out);
            } else {
                out.insert(path.clone(), fs::read_to_string(&path).unwrap());
            }
        }
    }
    let mut out = std::collections::BTreeMap::new();
    walk(root, &mut out);
    out
}

#[test]
fn fix_is_idempotent_across_the_whole_tree() {
    // The property that makes `--fix` safe to run from a pre-commit
    // hook: once it has fixed everything mechanical, running it again
    // must not touch a single byte anywhere in the tree — not the fixed
    // file, not its neighbors. A fix that oscillates (removes a line,
    // then re-wraps the file differently on the next pass) would churn
    // diffs forever.
    let root = scaffold("idem");
    // A second file stacks every mechanical fix: two stale allows (one
    // partially stale, one fully) around a live one.
    fs::write(
        root.join("crates/sim/src/util.rs"),
        "//! Scaffold module.\n\n\
         // simlint::allow(no-hash-order): keyed access only\n\
         pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> u64 {\n    m[&k]\n}\n\n\
         // simlint::allow(no-ambient-rng, no-wall-clock): rng is real, clock is not\n\
         pub fn jitter() -> u64 {\n    thread_rng()\n}\n",
    )
    .unwrap();

    let (_, fixes) = lint_workspace_full(&root).unwrap();
    apply_fixes(&fixes).unwrap();
    let after_first = tree_snapshot(&root);

    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.files_changed, 0, "second fix pass must be a no-op");
    let after_second = tree_snapshot(&root);
    assert_eq!(
        after_first, after_second,
        "a second --fix changed bytes somewhere in the tree"
    );

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn stale_write_effect_suppressions_are_fixed() {
    // The write-effect rules ride the same stale-suppression cycle as
    // the older families: an allow for `observer-purity` or
    // `frozen-config` that no longer silences anything is itself a
    // finding, one fix pass removes it, and a second pass is a no-op.
    let root = scaffold("effects");
    fs::write(
        root.join("crates/sim/src/obs.rs"),
        "//! Scaffold module.\n\n\
         // simlint::allow(observer-purity): tracing no longer advances the clock\n\
         pub fn snapshot(steps: u64) -> u64 {\n    steps\n}\n\n\
         // simlint::allow(frozen-config): the builder was inlined away\n\
         pub fn default_population() -> u64 {\n    50\n}\n",
    )
    .unwrap();

    let report = lint_workspace(&root).unwrap();
    let json = report.render_json();
    assert!(
        json.contains("observer-purity") && json.contains("frozen-config"),
        "stale write-effect allows must be findings: {json}"
    );

    // One pass clears the two planted allows plus the scaffold's own
    // stale one; the re-lint is clean and a second pass changes nothing.
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.suppressions_removed, 3);
    let after_first = tree_snapshot(&root);

    assert!(lint_workspace(&root).unwrap().is_clean());
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    assert_eq!(apply_fixes(&fixes).unwrap().files_changed, 0);
    assert_eq!(after_first, tree_snapshot(&root));

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn live_write_effect_suppressions_survive_the_fix() {
    // An allow that actually silences an `observer-purity` finding (a
    // gated call whose callee writes sim state) is live and must not be
    // pruned by `--fix`.
    let root = scaffold("effects-live");
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "#![forbid(unsafe_code)]\n//! Scaffold crate.\n\n\
         pub struct Cfg {\n    pub trace: bool,\n}\n\n\
         pub struct Sys {\n    pub cfg: Cfg,\n    pub steps: u64,\n}\n\n\
         impl Sys {\n\
         \x20   fn advance(&mut self) {\n        self.steps += 1;\n    }\n\n\
         \x20   pub fn tick(&mut self) {\n\
         \x20       if self.cfg.trace {\n\
         \x20           // simlint::allow(observer-purity): fixture exercises a live allow\n\
         \x20           self.advance();\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )
    .unwrap();

    assert!(lint_workspace(&root).unwrap().is_clean());
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.files_changed, 0, "live allow must not be touched");
    let src = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    assert!(src.contains("simlint::allow(observer-purity)"));

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn live_suppressions_survive_the_fix() {
    let root = scaffold("live");
    // Make the suppression earn its keep: the function now calls a
    // wall clock on the line the allow covers.
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "#![forbid(unsafe_code)]\n//! Scaffold crate.\n\n\
         // simlint::allow(no-wall-clock): fixture exercises a live allow\n\
         pub fn step() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .unwrap();

    assert!(lint_workspace(&root).unwrap().is_clean());
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.files_changed, 0, "live allow must not be touched");
    let src = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    assert!(src.contains("simlint::allow(no-wall-clock)"));

    fs::remove_dir_all(&root).unwrap();
}
