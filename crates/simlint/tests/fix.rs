//! End-to-end `--fix` semantics against a real workspace on disk: stale
//! suppressions are findings (the lint run fails), one fix pass repairs
//! everything mechanical, the re-lint comes back clean, and a second
//! pass is a no-op. This pins the CLI exit-code contract the fix mode
//! rides on.

use std::fs;
use std::path::PathBuf;

use mlb_simlint::fix::apply_fixes;
use mlb_simlint::{lint_workspace, lint_workspace_full};

/// Builds a one-crate workspace whose lib.rs has a missing
/// `#![forbid(unsafe_code)]` header and one stale suppression.
fn scaffold(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fixws-{tag}"));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    fs::create_dir_all(root.join("crates/sim/src")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/sim\"]\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"mlb-simkernel\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "//! Scaffold crate.\n\n\
         // simlint::allow(no-wall-clock): nothing here reads a clock anymore\n\
         pub fn step(now_us: u64) -> u64 {\n    now_us + 1\n}\n",
    )
    .unwrap();
    root
}

#[test]
fn stale_suppressions_fail_the_lint_and_fix_repairs_them() {
    let root = scaffold("main");

    // Before the fix: the stale allow and the missing header are both
    // findings, so the report that drives the CLI exit code is dirty.
    let report = lint_workspace(&root).unwrap();
    assert!(!report.is_clean(), "stale suppression must fail the run");
    let json = report.render_json();
    assert!(
        json.contains("bad-suppression"),
        "missing stale finding: {json}"
    );
    assert!(
        json.contains("crate-header"),
        "missing header finding: {json}"
    );

    // One fix pass repairs both.
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.files_changed, 1);
    assert_eq!(summary.suppressions_removed, 1);
    assert_eq!(summary.headers_added, 1);

    let fixed = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    assert!(fixed.starts_with("#![forbid(unsafe_code)]\n"), "{fixed}");
    assert!(!fixed.contains("simlint::allow"), "{fixed}");

    // The re-lint (what the CLI runs after fixing) is clean, and a
    // second fix pass has nothing left to do.
    assert!(lint_workspace(&root).unwrap().is_clean());
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    assert_eq!(apply_fixes(&fixes).unwrap().files_changed, 0);

    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn live_suppressions_survive_the_fix() {
    let root = scaffold("live");
    // Make the suppression earn its keep: the function now calls a
    // wall clock on the line the allow covers.
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "#![forbid(unsafe_code)]\n//! Scaffold crate.\n\n\
         // simlint::allow(no-wall-clock): fixture exercises a live allow\n\
         pub fn step() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .unwrap();

    assert!(lint_workspace(&root).unwrap().is_clean());
    let (_, fixes) = lint_workspace_full(&root).unwrap();
    let summary = apply_fixes(&fixes).unwrap();
    assert_eq!(summary.files_changed, 0, "live allow must not be touched");
    let src = fs::read_to_string(root.join("crates/sim/src/lib.rs")).unwrap();
    assert!(src.contains("simlint::allow(no-wall-clock)"));

    fs::remove_dir_all(&root).unwrap();
}
