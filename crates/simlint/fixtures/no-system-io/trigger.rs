// Fixture: triggers `no-system-io`. Reading the filesystem or the
// process environment inside simulation code ties the run to the host:
// the same (config, seed) pair would behave differently on another
// machine, breaking bit-identical reproduction.

pub fn load_think_time() -> u64 {
    let raw = std::env::var("THINK_TIME_US").unwrap_or_default();
    let fallback = std::fs::read_to_string("think_time.txt").unwrap_or_default();
    raw.parse().or_else(|_| fallback.trim().parse()).unwrap_or(7_000_000)
}
