// Fixture: clean under `no-system-io`. Simulation inputs arrive through
// the configuration struct, so a run is a pure function of
// (config, seed); artifact writing happens in the bench/CLI layer.

pub fn think_time(cfg: &SystemConfig) -> SimDuration {
    cfg.population.think_time_mean()
}
