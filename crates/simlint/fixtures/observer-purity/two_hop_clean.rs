// Fixture: the same two-hop shape as two_hop_trigger.rs, but the probe
// is declared observation-only via `simlint::state(observer)` — its
// writes are the observer layer doing its job, not a perturbation.

pub struct Config {
    pub metrics: bool,
}

// simlint::state(observer)
pub struct Probe {
    pub samples: u64,
}

pub struct Sys {
    pub cfg: Config,
    pub probe: Probe,
}

fn hop2(p: &mut Probe) {
    p.samples += 1;
}

fn hop1(p: &mut Probe) {
    hop2(p);
}

impl Sys {
    pub fn on_window(&mut self) {
        if self.cfg.metrics {
            hop1(&mut self.probe);
        }
    }
}
