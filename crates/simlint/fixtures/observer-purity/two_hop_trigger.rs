// Fixture: a sim-state write laundered through two helper hops must be
// caught with exactly ONE `observer-purity` finding, at the outermost
// observation-gated call — not once per hop.

pub struct Config {
    pub metrics: bool,
}

pub struct Probe {
    pub queue_len: u64,
}

pub struct Sys {
    pub cfg: Config,
    pub probe: Probe,
}

fn hop2(p: &mut Probe) {
    p.queue_len += 1;
}

fn hop1(p: &mut Probe) {
    hop2(p);
}

impl Sys {
    pub fn on_window(&mut self) {
        if self.cfg.metrics {
            hop1(&mut self.probe);
        }
    }
}
