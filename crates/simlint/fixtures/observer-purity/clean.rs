// Fixture: clean under `observer-purity`. The gated call bumps tracer
// state — `Tracer` is a built-in observer type, so its fields are
// observation-only and the write cannot perturb the run.

pub struct Config {
    pub trace: bool,
}

pub struct Tracer {
    pub events: u64,
}

impl Tracer {
    pub fn bump(&mut self) {
        self.events += 1;
    }
}

pub struct Sys {
    pub cfg: Config,
    pub tracer: Tracer,
}

impl Sys {
    pub fn on_event(&mut self) {
        if self.cfg.trace {
            self.tracer.bump();
        }
    }
}
