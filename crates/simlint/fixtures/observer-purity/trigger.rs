// Fixture: triggers `observer-purity`. The event hook only advances the
// step counter when tracing is on — so enabling the tracer changes the
// simulation it is supposed to observe. The write happens inside a
// helper; the finding lands at the gated call.

pub struct Config {
    pub trace: bool,
}

pub struct Tracer {
    pub events: u64,
}

pub struct Sys {
    pub cfg: Config,
    pub tracer: Tracer,
    pub steps: u64,
}

impl Sys {
    fn advance(&mut self) {
        self.steps += 1;
    }

    pub fn on_event(&mut self) {
        if self.cfg.trace {
            self.advance();
        }
    }
}
