// Fixture: triggers `shard-shared-state` three ways. Each is shared
// mutable state that one event-queue shard could scribble on while
// another reads — invisible to any single-threaded determinism test,
// fatal the day the kernel shards across cores.

static mut EVENTS_PROCESSED: u64 = 0;

static COMPLETION_LOG: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
