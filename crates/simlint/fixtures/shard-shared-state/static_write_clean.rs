// Fixture: clean under the static-write upgrade. Reading a static is
// fine — only writes turn a process global into a cross-shard channel.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENT_COUNT: AtomicU64 = AtomicU64::new(0);

pub fn current() -> u64 {
    EVENT_COUNT.load(Ordering::SeqCst)
}
