// Fixture: triggers the field-sensitive write upgrade of
// `shard-shared-state`. The static itself is soundly synchronized
// (SeqCst atomic — the token heuristics accept it), but sim code
// WRITING a process global is still cross-shard communication, and the
// write-effect engine reports the write site.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENT_COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    EVENT_COUNT.fetch_add(1, Ordering::SeqCst);
}
