// Fixture: clean under `shard-shared-state`. Immutable statics and
// consts are fine (nothing to race on), and sequentially-consistent
// atomic updates are ordered the same on every host.

pub const WINDOW_US: u64 = 50_000;

static POLICY_NAME: &str = "round_robin";

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}
