//! Fixture: clean under `crate-header` — a compliant crate root.

#![forbid(unsafe_code)]

pub fn noop() {}
