//! Fixture: triggers `crate-header` — a crate root that forgot its
//! `#![forbid(unsafe_code)]` header.

pub fn noop() {}
