// Fixture: triggers `frozen-config`. The config is mutated after
// `validate()` returned, so the run starts from a state no validator
// ever saw.

pub struct SystemConfig {
    pub population: u64,
}

impl SystemConfig {
    pub fn smoke() -> SystemConfig {
        SystemConfig { population: 50 }
    }

    pub fn validate(&self) -> bool {
        self.population > 0
    }
}

pub fn run() -> u64 {
    let mut cfg = SystemConfig::smoke();
    cfg.population = 100;
    let ok = cfg.validate();
    cfg.population = 200;
    if ok {
        cfg.population
    } else {
        0
    }
}
