// Fixture: clean under `frozen-config`. All mutation happens during the
// build phase (builder methods in `impl SystemConfig` are exempt by
// design); after `validate()` the config is only read.

pub struct SystemConfig {
    pub population: u64,
}

impl SystemConfig {
    pub fn smoke() -> SystemConfig {
        SystemConfig { population: 50 }
    }

    pub fn with_population(mut self, population: u64) -> SystemConfig {
        self.population = population;
        self
    }

    pub fn validate(&self) -> bool {
        self.population > 0
    }
}

pub fn run() -> u64 {
    let cfg = SystemConfig::smoke().with_population(100);
    let ok = cfg.validate();
    if ok {
        cfg.population
    } else {
        0
    }
}
