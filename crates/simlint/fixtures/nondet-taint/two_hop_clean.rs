// Fixture: the clean twin of two_hop_trigger.rs. Identical call shape,
// but hop2 drops its argument and returns a constant — the summary
// records no param-to-return flow, so the taint dies at the first hop
// and nothing reaches the scheduler.

fn hop2(_v: u64) -> u64 {
    0
}

fn hop1(v: u64) -> u64 {
    hop2(v)
}

pub fn arm_probe(sched: &mut Scheduler) {
    // simlint::allow(no-wall-clock): fixture needs a nondeterministic source
    let stamp = Instant::now().elapsed().as_micros() as u64;
    sched.schedule(hop1(stamp), 0);
}
