// Fixture: clean under `nondet-taint`. Ordered-map iteration and
// simulated-clock arithmetic are deterministic, so the same values
// reaching the same sinks raise nothing.

pub const STEP_US: u64 = 250;

pub fn replay(sched: &mut Scheduler, pending: &BTreeMap<u64, u64>) {
    for (id, at) in pending.iter() {
        sched.schedule(*at, *id);
    }
}

pub fn arm_timeout(sched: &mut Scheduler, now_us: u64) {
    let deadline = SimTime::from_micros(now_us + STEP_US);
    sched.push(deadline);
}
