// Fixture: triggers `nondet-taint`. Hash-map iteration order is
// RandomState's, so scheduling one event per entry enqueues them in a
// different order every process — the classic planted taint the
// dataflow layer exists to catch.

pub fn replay(sched: &mut Scheduler, pending: &HashMap<u64, u64>) {
    for (id, at) in pending.iter() {
        sched.schedule(*at, *id);
    }
}

// Wall-clock readings are just as poisonous once laundered through a
// local: the lexer sees only `Instant::now`, the taint does the rest.
pub fn arm_timeout(sched: &mut Scheduler) {
    let now = Instant::now();
    let deadline = now + 5;
    sched.push(deadline);
}
