// Fixture: interprocedural `nondet-taint` — the wall-clock reading is
// laundered through two helper functions before reaching the
// scheduler, so any per-function analysis loses the trail after the
// first call. The function summaries (hop2 returns its param, hop1
// composes with hop2) carry the taint across both hops. Exactly one
// finding must result: the sink, not one per hop.

fn hop2(v: u64) -> u64 {
    v
}

fn hop1(v: u64) -> u64 {
    hop2(v)
}

pub fn arm_probe(sched: &mut Scheduler) {
    // simlint::allow(no-wall-clock): fixture needs a nondeterministic source
    let stamp = Instant::now().elapsed().as_micros() as u64;
    sched.schedule(hop1(stamp), 0);
}
