// Fixture: triggers `no-hash-order`. Iterating a HashMap visits entries
// in RandomState order, which differs between processes — any simulation
// output derived from this loop is nondeterministic.

pub fn total(counts: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum
}

// Chain receivers are just as unstable: the map comes back from a call,
// not a binding, but its iteration order is still RandomState's.
impl Table {
    fn live(&self) -> &HashMap<u64, u64> {
        &self.live
    }

    pub fn drain_order(&self) -> Vec<u64> {
        self.live().keys().copied().collect()
    }
}
