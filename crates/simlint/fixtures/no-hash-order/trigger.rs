// Fixture: triggers `no-hash-order`. Iterating a HashMap visits entries
// in RandomState order, which differs between processes — any simulation
// output derived from this loop is nondeterministic.

pub fn total(counts: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum
}
