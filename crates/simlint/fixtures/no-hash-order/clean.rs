// Fixture: clean under `no-hash-order`. BTreeMap iteration is
// key-ordered and deterministic, and keyed access into a HashMap is fine
// — only its iteration order is unstable.

pub fn total(counts: &BTreeMap<u64, u64>, probe: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum + probe.get(&0).copied().unwrap_or(0)
}
