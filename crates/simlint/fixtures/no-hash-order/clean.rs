// Fixture: clean under `no-hash-order`. BTreeMap iteration is
// key-ordered and deterministic, and keyed access into a HashMap is fine
// — only its iteration order is unstable.

pub fn total(counts: &BTreeMap<u64, u64>, probe: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum + probe.get(&0).copied().unwrap_or(0)
}

// Chains off calls returning ordered maps — or keyed probes into a
// hash-returning call — are fine; only order-sensitive iteration of a
// hash collection is flagged.
impl Table {
    fn rows(&self) -> &BTreeMap<u64, u64> {
        &self.rows
    }

    fn probe(&self) -> &HashMap<u64, u64> {
        &self.probe
    }

    pub fn snapshot(&self) -> (Vec<u64>, u64) {
        let ordered = self.rows().keys().copied().collect();
        (ordered, self.probe().get(&0).copied().unwrap_or(0))
    }
}
