// Fixture: triggers `time-unit`. The detector window is named in
// milliseconds but fed to a microsecond constructor — a 1000x planted
// error the suffix convention makes visible to the dataflow layer.

pub const WINDOW_MS: u64 = 50;

pub fn arm(sched: &mut Scheduler) {
    let deadline = SimTime::from_micros(WINDOW_MS);
    sched.push(deadline);
}

// Parameters carry units too: a millisecond timeout must not reach a
// microsecond constructor unconverted.
pub fn arm_timeout(sched: &mut Scheduler, timeout_ms: u64) {
    sched.push(SimTime::from_micros(timeout_ms));
}
