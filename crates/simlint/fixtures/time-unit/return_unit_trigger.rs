// Fixture: triggers `time-unit` through a function RETURN value. The
// helper's name carries no unit, but its body returns a `_ms` local —
// the summary propagates Ms through the call, and the µs sink catches
// the 1000x error interprocedurally.

fn poll_window() -> u64 {
    let w_ms: u64 = 50;
    w_ms
}

pub fn arm(sched: &mut Scheduler) {
    sched.push(SimTime::from_micros(poll_window()));
}
