// Fixture: clean under `time-unit` return propagation. The helper
// returns a µs-labelled local, which agrees with the µs sink.

fn poll_window() -> u64 {
    let w_us: u64 = 50_000;
    w_us
}

pub fn arm(sched: &mut Scheduler) {
    sched.push(SimTime::from_micros(poll_window()));
}
