// Fixture: clean under `time-unit`. Suffixes agree with constructors,
// and a `simlint::unit` annotation covers a name the suffix convention
// cannot reach.

pub const WINDOW_MS: u64 = 50;
pub const STEP_US: u64 = 250;

// simlint::unit(us)
pub const QUANTUM: u64 = 1_000;

pub fn arm(sched: &mut Scheduler) {
    sched.push(SimTime::from_millis(WINDOW_MS));
    sched.push(SimTime::from_micros(STEP_US));
    sched.push(SimTime::from_micros(QUANTUM));
}

pub fn arm_timeout(sched: &mut Scheduler, timeout_us: u64) {
    sched.push(SimTime::from_micros(timeout_us));
}
