// Fixture: triggers `no-ambient-rng`. thread_rng() seeds itself from the
// OS, so every run draws a different sequence — the fixed-seed
// reproducibility contract is silently broken.

pub fn jitter_us() -> u64 {
    let mut rng = thread_rng();
    rng.gen_range(0..100)
}
