// Fixture: clean under `no-ambient-rng`. All randomness derives from a
// named stream of the experiment's SeedSequence, so the same seed always
// yields the same draws.

pub fn jitter_us(seeds: &mut SeedSequence) -> u64 {
    let mut rng = seeds.stream("jitter");
    rng.next_u64() % 100
}
