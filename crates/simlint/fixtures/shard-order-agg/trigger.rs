// Fixture: triggers `shard-order-agg`. The channel delivers fan-out
// results in completion order — which worker finished first — so the
// vector's element order differs run to run even when the multiset of
// values is identical. Any order-sensitive consumer (digests, first-N
// picks) then diverges.

pub fn join_fan_out(n: u64, rx: &Receiver<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for _ in 0..n {
        let v = rx.recv();
        out.push(v);
    }
    out
}
