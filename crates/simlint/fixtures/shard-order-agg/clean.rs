// Fixture: clean under `shard-order-agg`. Each result carries its
// input index and lands in a pre-sized slot, so the join is the same
// whatever order the workers finish in.

pub fn join_fan_out(n: u64, rx: &Receiver<(u64, u64)>) -> Vec<u64> {
    let mut out = vec![0u64; n];
    for _ in 0..n {
        let (idx, v) = rx.recv();
        out[idx] = v;
    }
    out
}
