// Fixture: triggers `no-float-accum`. Running f64 sums in telemetry
// accumulation paths drift with summation order and platform rounding —
// two runs that process the same samples can disagree in the last bits,
// which is fatal for byte-identical golden exports.

pub struct Window {
    sum: f64,
    count: u64,
}

pub fn record(w: &mut Window, value: f64) {
    w.sum += value;
    w.count += 1;
}

pub fn total_ms(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>()
}
