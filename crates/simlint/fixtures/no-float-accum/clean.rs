// Fixture: clean under `no-float-accum`. Accumulated state is integral
// (microseconds and counts); floats appear only on the read side, where
// a single conversion cannot drift.

pub struct Window {
    sum_us: u64,
    count: u64,
}

pub fn record(w: &mut Window, value_us: u64) {
    w.sum_us += value_us;
    w.count += 1;
}

pub fn mean_ms(w: &Window) -> f64 {
    if w.count == 0 {
        return 0.0;
    }
    w.sum_us as f64 / w.count as f64 / 1_000.0
}
