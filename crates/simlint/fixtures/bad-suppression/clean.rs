// Fixture: clean under `bad-suppression` — a well-formed, justified
// suppression that actually silences a finding on the next line.

pub fn deliberate_ambient_draw() -> u64 {
    // simlint::allow(no-ambient-rng): fixture demonstrating a justified, used suppression
    let mut rng = thread_rng();
    rng.gen_range(0..100)
}
