// Fixture: triggers `bad-suppression`. The allowance below never
// matches a finding — stale suppressions are hygiene debt and are
// themselves reported (and cannot be suppressed).

// simlint::allow(no-wall-clock): nothing here reads the clock, so this never matches
pub fn noop() {}
