// Fixture: clean under `panic-hygiene`. Either handle the None arm, or
// keep the panic and write the invariant down in a justified
// suppression.

pub fn lookup_or_zero(requests: &BTreeMap<u64, u64>, id: u64) -> u64 {
    match requests.get(&id) {
        Some(v) => *v,
        None => 0,
    }
}

pub fn lookup_invariant(requests: &BTreeMap<u64, u64>, id: u64) -> u64 {
    *requests
        .get(&id)
        // simlint::allow(panic-hygiene): the caller inserted this id earlier in the same transition
        .expect("request vanished")
}
