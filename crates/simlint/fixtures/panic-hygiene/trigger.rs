// Fixture: triggers `panic-hygiene`. A bare .expect() in an event-loop
// hot path tears down the whole simulation with no statement of the
// invariant that was supposed to hold.

pub fn lookup(requests: &BTreeMap<u64, u64>, id: u64) -> u64 {
    *requests.get(&id).expect("request vanished")
}
