// Fixture: clean under `match-exhaustive`. Every variant is named, so
// adding a kind breaks the build here instead of silently taking a
// default; wildcards over enums outside the tracked set stay legal.

pub enum QueueKind {
    Cpu,
    Disk,
    Net,
}

pub fn weight(k: &QueueKind) -> u32 {
    match k {
        QueueKind::Cpu => 3,
        QueueKind::Disk | QueueKind::Net => 1,
    }
}

pub fn describe(code: u32) -> &'static str {
    match code {
        0 => "ok",
        _ => "error",
    }
}
