// Fixture: triggers `match-exhaustive`. Hiding queue kinds behind a
// wildcard means a newly added kind silently inherits the default
// weight instead of forcing a decision at this site.

pub enum QueueKind {
    Cpu,
    Disk,
    Net,
}

pub fn weight(k: &QueueKind) -> u32 {
    match k {
        QueueKind::Cpu => 3,
        _ => 1,
    }
}
