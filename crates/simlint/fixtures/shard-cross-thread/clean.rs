// Fixture: clean under `shard-cross-thread`. The closure captures only
// a config value passed in by the caller — a pure function of the
// inputs — so running it on worker threads changes nothing observable.

pub fn fan_out(items: &[u64], offset: u64) -> Vec<u64> {
    par_runs(items, |item| item + offset)
}
