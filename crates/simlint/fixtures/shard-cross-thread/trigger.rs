// Fixture: triggers `shard-cross-thread`. The wall-clock stamp is
// nondeterministic, and the closure handed to `par_runs` runs on a
// worker thread — every run the workers observe a different stamp, so
// the fan-out's results stop being a pure function of (config, seed).
// The suppression scopes the wall-clock *read* (this fixture needs a
// taint source); the capture is the violation under test.

pub fn fan_out(items: &[u64]) -> Vec<u64> {
    // simlint::allow(no-wall-clock): fixture needs a nondeterministic source
    let stamp = Instant::now().elapsed().as_micros() as u64;
    par_runs(items, |item| item + stamp)
}
