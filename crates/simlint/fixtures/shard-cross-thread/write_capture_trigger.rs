// Fixture: triggers the write-capture upgrade of `shard-cross-thread`.
// No taint is involved — the closure handed to the thread-crossing
// fan-out mutates a captured accumulator, so the merged total depends
// on cross-shard interleaving.

pub fn par_runs(n: u64, f: impl Fn(u64)) {
    let mut i = 0;
    while i < n {
        f(i);
        i += 1;
    }
}

pub fn total_of(n: u64) -> u64 {
    let mut total = 0;
    par_runs(n, |k| {
        total += k;
    });
    total
}
