// Fixture: clean under the write-capture upgrade. The closure only
// READS its captures; per-item results flow back through the return
// value and are combined by the caller.

pub fn par_runs(n: u64, f: impl Fn(u64) -> u64) -> u64 {
    let mut acc = 0;
    let mut i = 0;
    while i < n {
        acc += f(i);
        i += 1;
    }
    acc
}

pub fn total_of(n: u64, offset: u64) -> u64 {
    par_runs(n, |k| k + offset)
}
