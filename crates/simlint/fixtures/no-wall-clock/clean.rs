// Fixture: clean under `no-wall-clock`. Simulation time flows from the
// event queue as SimTime/SimDuration values, never from the host clock.

pub fn elapsed_sim(now: SimTime, start: SimTime) -> SimDuration {
    now.saturating_since(start)
}
