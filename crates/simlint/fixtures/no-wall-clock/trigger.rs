// Fixture: triggers `no-wall-clock`. Reading the host clock inside
// simulation code makes runs irreproducible — two runs of the same seed
// would observe different "now" values.

pub fn elapsed_wall() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
