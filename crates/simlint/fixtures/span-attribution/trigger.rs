// Fixture: triggers `span-attribution`. `Ghost` is declared but never
// constructed as `SpanKind::Ghost`, so a request carrying it would fall
// out of VLRT attribution without anyone noticing.

pub enum SpanKind {
    Issued,
    Ghost,
}

pub fn label(kind: &SpanKind) -> &'static str {
    match kind {
        SpanKind::Issued => "issued",
        _ => "other",
    }
}
