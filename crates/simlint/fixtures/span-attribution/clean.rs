// Fixture: clean under `span-attribution` — every declared variant is
// constructed somewhere in the attribution code.

pub enum SpanKind {
    Issued,
    Ghost,
}

pub fn label(kind: &SpanKind) -> &'static str {
    match kind {
        SpanKind::Issued => "issued",
        SpanKind::Ghost => "ghost",
    }
}
