//! The 3-state backend model (paper Section IV-A).
//!
//! mod_jk assumes every backend is in one of three states:
//!
//! 1. **Available** — able to process requests;
//! 2. **Busy** — all connections in use; skipped by selection;
//! 3. **Error** — unreachable; skipped until a recovery timeout elapses.
//!
//! The paper's mechanism-level finding is that a backend in a
//! millibottleneck fits none of these: it *looks* Available (TCP accepts,
//! pool may have free endpoints) while processing nothing. The original
//! `get_endpoint` keeps it Available throughout its polling loop; the
//! remedy ([`crate::mechanism::MechanismKind::SkipToBusy`]) pushes it to
//! Busy on the first failed acquisition.
//!
//! Busy and Error are held with timestamps and expire lazily: state is
//! always queried *at* a time ([`BackendState::effective`]), never stored
//! stale.

use crate::config::BalancerConfig;
use mlb_simkernel::time::SimTime;

/// The observable state of a backend at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Selectable.
    Available,
    /// Skipped: recently failed to hand out an endpoint.
    Busy,
    /// Skipped: escalated after repeated failures; recovering.
    Error,
}

/// Per-backend state bookkeeping with lazy expiry.
///
/// Failures are counted per **episode**: all failures landing within one
/// `busy_hold` window of the episode's first failure count as a single
/// observation of unavailability. (Without this, a burst of simultaneous
/// probe timeouts — one per in-flight request — would escalate a healthy
/// server straight to Error.)
#[derive(Debug, Clone, Default)]
pub struct BackendState {
    busy_since: Option<SimTime>,
    error_since: Option<SimTime>,
    episode_start: Option<SimTime>,
    consecutive_failures: u32,
    // lifetime counters
    busy_marks: u64,
    error_marks: u64,
}

impl BackendState {
    /// A fresh, Available backend.
    pub fn new() -> Self {
        BackendState::default()
    }

    /// The state in effect at `now` under `cfg`'s hold/recovery windows.
    pub fn effective(&self, now: SimTime, cfg: &BalancerConfig) -> WorkerState {
        if let Some(since) = self.error_since {
            if now.saturating_since(since) < cfg.error_recover {
                return WorkerState::Error;
            }
        }
        if let Some(since) = self.busy_since {
            if now.saturating_since(since) < cfg.busy_hold {
                return WorkerState::Busy;
            }
        }
        WorkerState::Available
    }

    /// Records a failed endpoint acquisition: Available → Busy, and after
    /// [`BalancerConfig::error_threshold`] consecutive failure *episodes*
    /// (bursts within one `busy_hold` window count once), Busy → Error.
    pub fn mark_failed(&mut self, now: SimTime, cfg: &BalancerConfig) {
        self.busy_since = Some(now);
        self.busy_marks += 1;
        let same_episode = matches!(
            self.episode_start,
            Some(start) if now.saturating_since(start) < cfg.busy_hold
        );
        if !same_episode {
            self.episode_start = Some(now);
            self.consecutive_failures += 1;
            if self.consecutive_failures >= cfg.error_threshold {
                self.error_since = Some(now);
                self.error_marks += 1;
            }
        }
    }

    /// Records proof of life (successful acquisition or a response):
    /// clears Busy/Error and the failure streak.
    pub fn mark_alive(&mut self) {
        self.consecutive_failures = 0;
        self.busy_since = None;
        self.error_since = None;
        self.episode_start = None;
    }

    /// Consecutive failed acquisitions since the last sign of life.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Lifetime count of Busy transitions.
    pub fn busy_marks(&self) -> u64 {
        self.busy_marks
    }

    /// Lifetime count of Error transitions.
    pub fn error_marks(&self) -> u64 {
        self.error_marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BalancerConfig;
    use mlb_simkernel::time::SimDuration;

    fn cfg() -> BalancerConfig {
        BalancerConfig {
            busy_hold: SimDuration::from_millis(100),
            error_threshold: 3,
            error_recover: SimDuration::from_secs(60),
            ..BalancerConfig::default()
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_available() {
        let s = BackendState::new();
        assert_eq!(s.effective(t(0), &cfg()), WorkerState::Available);
    }

    #[test]
    fn busy_expires_after_hold() {
        let c = cfg();
        let mut s = BackendState::new();
        s.mark_failed(t(10), &c);
        assert_eq!(s.effective(t(50), &c), WorkerState::Busy);
        assert_eq!(s.effective(t(109), &c), WorkerState::Busy);
        assert_eq!(s.effective(t(110), &c), WorkerState::Available);
    }

    #[test]
    fn repeated_failures_escalate_to_error() {
        let c = cfg();
        let mut s = BackendState::new();
        s.mark_failed(t(0), &c);
        s.mark_failed(t(100), &c);
        assert_eq!(s.effective(t(150), &c), WorkerState::Busy);
        s.mark_failed(t(200), &c); // third consecutive → Error
        assert_eq!(s.effective(t(250), &c), WorkerState::Error);
        assert_eq!(s.error_marks(), 1);
    }

    #[test]
    fn error_recovers_after_timeout() {
        let c = cfg();
        let mut s = BackendState::new();
        for i in 0..3 {
            s.mark_failed(t(i * 200), &c); // distinct episodes (hold = 100 ms)
        }
        assert_eq!(s.effective(t(30_000), &c), WorkerState::Error);
        // error_recover is 60 s from the escalating failure at t = 400 ms.
        assert_eq!(s.effective(t(60_401), &c), WorkerState::Available);
    }

    #[test]
    fn failure_bursts_count_as_one_episode() {
        // Ten simultaneous probe timeouts must NOT escalate to Error.
        let c = cfg(); // error_threshold = 3
        let mut s = BackendState::new();
        for _ in 0..10 {
            s.mark_failed(t(50), &c);
        }
        assert_eq!(s.consecutive_failures(), 1);
        assert_eq!(s.effective(t(60), &c), WorkerState::Busy);
        assert_eq!(s.effective(t(200), &c), WorkerState::Available);
        // A second burst in a later window is a second episode.
        for _ in 0..5 {
            s.mark_failed(t(300), &c);
        }
        assert_eq!(s.consecutive_failures(), 2);
    }

    #[test]
    fn alive_clears_everything() {
        let c = cfg();
        let mut s = BackendState::new();
        s.mark_failed(t(0), &c);
        s.mark_failed(t(1), &c);
        s.mark_alive();
        assert_eq!(s.consecutive_failures(), 0);
        assert_eq!(s.effective(t(2), &c), WorkerState::Available);
        // The streak restarts from scratch.
        s.mark_failed(t(3), &c);
        assert_eq!(s.effective(t(4), &c), WorkerState::Busy);
        assert_eq!(s.effective(t(200), &c), WorkerState::Available);
    }

    #[test]
    fn busy_marks_counted() {
        let c = cfg();
        let mut s = BackendState::new();
        s.mark_failed(t(0), &c);
        s.mark_alive();
        s.mark_failed(t(5), &c);
        assert_eq!(s.busy_marks(), 2);
    }
}
