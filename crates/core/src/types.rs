//! Shared identifier types.

use std::fmt;

/// Index of a backend (Tomcat) server within one balancer's candidate set.
///
/// # Examples
///
/// ```
/// use mlb_core::types::BackendId;
///
/// let b = BackendId(2);
/// assert_eq!(b.index(), 2);
/// assert_eq!(b.to_string(), "backend#2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(pub usize);

impl BackendId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backend#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(BackendId(7).index(), 7);
        assert_eq!(BackendId(7).to_string(), "backend#7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(BackendId(1) < BackendId(2));
    }
}
