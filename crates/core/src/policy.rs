//! Load-balancing policies (paper Section II-A, V — plus extension
//! baselines).
//!
//! A policy is a rule for maintaining one ranking score per backend; the
//! lower-level scheduler always picks the Available backend with the
//! **minimum** score (except [`PolicyKind::Random`], which ignores
//! scores). The three policies studied in the paper:
//!
//! * [`PolicyKind::TotalRequest`] (mod_jk default, Algorithm 2) —
//!   score = requests the backend has **served**. Grows on completion.
//! * [`PolicyKind::TotalTraffic`] (Algorithm 3) — score = bytes exchanged
//!   with the backend. Grows on completion.
//! * [`PolicyKind::CurrentLoad`] (Algorithm 4, the paper's policy remedy)
//!   — score = requests **currently outstanding**. Grows on assignment,
//!   shrinks on completion.
//!
//! The first two make decisions on *cumulative* history: a backend frozen
//! by a millibottleneck serves nothing, so its score stalls at the
//! minimum and the balancer keeps feeding it (the instability of
//! Figs. 6/7/10/11). `CurrentLoad` uses *current* state: the frozen
//! backend's outstanding count rises immediately, so it stops being
//! picked.
//!
//! Four extension policies round out the comparison (the paper's related
//! work motivates them; none appears in its evaluation):
//!
//! * [`PolicyKind::RoundRobin`] — score = requests **assigned**; with
//!   min-selection this yields strict rotation.
//! * [`PolicyKind::Random`] — uniform choice among Available candidates.
//! * [`PolicyKind::LeastEwmaLatency`] — score = an exponentially weighted
//!   moving average of observed response latency. Latency-aware but
//!   *lagging*: a frozen backend keeps its last (good) EWMA because it
//!   completes nothing, so this policy inherits the instability. It also
//!   *herds* in healthy systems (whichever backend's average dips first
//!   receives the bulk of the traffic) — the classic least-latency
//!   problem that C3's concurrency term was designed to fix.
//! * [`PolicyKind::C3`] — Suresh et al.'s replica ranking (NSDI'15,
//!   cited as \[24\] in the paper): score = EWMA × (1 + outstanding)³. The
//!   concurrency term reacts within the millibottleneck, so C3 behaves
//!   like `current_load` with latency awareness on top.
//!
//! Two further baselines from the related-work survey, plus the closed
//! loop this repo builds on top of the paper:
//!
//! * [`PolicyKind::Jsq`] — join-the-shortest-of-d-queues
//!   (power-of-d-choices): sample `d` eligible backends uniformly from
//!   the policy RNG stream, pick the least outstanding. Near-optimal
//!   tail behavior in healthy clusters, but its sample can miss the
//!   frozen backend only probabilistically.
//! * [`PolicyKind::DetectorDriven`] — `current_load` ranking plus an
//!   eligibility veto from the online millibottleneck detector: a
//!   backend inside a flagged stall window is skipped entirely until
//!   the first clean window re-admits it (see `Balancer::signal_stall`).
//!
//! On the increment placement for the cumulative policies: the paper's
//! pseudo-code sketches the increment near the send, but its analysis is
//! explicit that healthy backends' values "keep increasing because they
//! can **process** requests" while the frozen backend's value stays lowest
//! for the whole millibottleneck — i.e. the counters track *served*
//! requests/traffic. We implement that semantic (increment on completion),
//! which is also what reproduces the lb_value inversion of Figs. 10b/11b.

use crate::types::BackendId;
use mlb_simkernel::rng::SplitMix64;
use mlb_simkernel::time::SimDuration;

/// Which ranking rule a balancer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Rank by accumulated requests served (mod_jk default).
    TotalRequest,
    /// Rank by accumulated request+response bytes served.
    TotalTraffic,
    /// Rank by currently outstanding requests (the policy remedy).
    CurrentLoad,
    /// Rank by accumulated requests assigned (strict rotation).
    RoundRobin,
    /// Uniform random choice among available candidates.
    Random,
    /// Rank by an EWMA of observed response latency (lagging).
    LeastEwmaLatency,
    /// Rank by EWMA latency × (1 + outstanding)³, after C3 (NSDI'15).
    C3,
    /// Power-of-d-choices: sample `d` eligible backends from the policy
    /// RNG stream and pick the least outstanding.
    Jsq(u8),
    /// `current_load` ranking with detector stall flags vetoing
    /// eligibility (the closed loop; see `Balancer::signal_stall`).
    DetectorDriven,
}

impl PolicyKind {
    /// The policy's name as used in tables and labels.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::TotalRequest => "total_request",
            PolicyKind::TotalTraffic => "total_traffic",
            PolicyKind::CurrentLoad => "current_load",
            PolicyKind::RoundRobin => "round_robin",
            PolicyKind::Random => "random",
            PolicyKind::LeastEwmaLatency => "ewma_latency",
            PolicyKind::C3 => "c3",
            PolicyKind::Jsq(_) => "jsq_d",
            PolicyKind::DetectorDriven => "detector_driven",
        }
    }

    /// `true` for policies whose ranking is a non-decreasing function of
    /// history (the ones with the millibottleneck instability in its
    /// purest form).
    pub fn is_cumulative(self) -> bool {
        matches!(
            self,
            PolicyKind::TotalRequest | PolicyKind::TotalTraffic | PolicyKind::RoundRobin
        )
    }

    /// `true` for policies whose ranking reacts to the backend's *current*
    /// state within a millibottleneck (the property the paper's remedy
    /// identifies).
    pub fn reacts_to_current_state(self) -> bool {
        matches!(
            self,
            PolicyKind::CurrentLoad
                | PolicyKind::C3
                | PolicyKind::Jsq(_)
                | PolicyKind::DetectorDriven
        )
    }

    /// The paper's three policies, in its presentation order.
    pub fn all() -> [PolicyKind; 3] {
        [
            PolicyKind::TotalRequest,
            PolicyKind::TotalTraffic,
            PolicyKind::CurrentLoad,
        ]
    }

    /// Every policy, paper ones first.
    pub fn all_extended() -> [PolicyKind; 7] {
        [
            PolicyKind::TotalRequest,
            PolicyKind::TotalTraffic,
            PolicyKind::CurrentLoad,
            PolicyKind::RoundRobin,
            PolicyKind::Random,
            PolicyKind::LeastEwmaLatency,
            PolicyKind::C3,
        ]
    }

    /// The related-work baselines added alongside the detector loop:
    /// power-of-two-choices and detector-driven routing. Kept out of
    /// [`PolicyKind::all_extended`] so the extension figure stays the
    /// paper-era comparison; the policy tournament covers all of these.
    pub fn baselines() -> [PolicyKind; 2] {
        [PolicyKind::Jsq(2), PolicyKind::DetectorDriven]
    }
}

/// EWMA smoothing factor as a rational (3/10 ≈ 0.3), in integer math so
/// runs stay bit-reproducible.
const EWMA_NUM: u64 = 3;
const EWMA_DEN: u64 = 10;

/// The per-backend ranking state and its update rules.
///
/// # Examples
///
/// ```
/// use mlb_core::policy::{LbValues, PolicyKind};
/// use mlb_core::types::BackendId;
/// use mlb_simkernel::time::SimDuration;
///
/// let mut lb = LbValues::new(PolicyKind::CurrentLoad, 2, 1);
/// lb.on_assign(BackendId(0), 500);
/// assert_eq!(lb.values(), &[1, 0]);
/// lb.on_complete(BackendId(0), 500, SimDuration::from_millis(3));
/// assert_eq!(lb.values(), &[0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct LbValues {
    kind: PolicyKind,
    lb_mult: u64,
    /// Per-backend increment units: `lb_mult × lcm(weights) / weight[i]`.
    /// All equal to `lb_mult` when no weights are set.
    mults: Vec<u64>,
    /// Cumulative counters (requests served / bytes served / assignments),
    /// by kind.
    counters: Vec<u64>,
    /// Requests currently outstanding per backend (always maintained).
    outstanding: Vec<u64>,
    /// EWMA of response latency in microseconds per backend.
    ewma_micros: Vec<u64>,
    /// Carried tenths-of-a-microsecond remainder of the EWMA update, so
    /// integer division cannot pin a small EWMA above zero forever.
    ewma_rem: Vec<u64>,
    /// Cached ranking scores (recomputed on every mutation).
    scores: Vec<u64>,
    rng: SplitMix64,
}

impl LbValues {
    /// Creates the ranking state for `backends` backends, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `backends` or `lb_mult` is zero.
    pub fn new(kind: PolicyKind, backends: usize, lb_mult: u64) -> Self {
        LbValues::with_seed(kind, backends, lb_mult, 0x5EED_BA5E)
    }

    /// Creates the ranking state with an explicit seed for the `Random`
    /// policy's stream.
    ///
    /// # Panics
    ///
    /// Panics if `backends` or `lb_mult` is zero.
    pub fn with_seed(kind: PolicyKind, backends: usize, lb_mult: u64, seed: u64) -> Self {
        assert!(backends > 0, "need at least one backend");
        assert!(lb_mult > 0, "lb_mult must be positive");
        LbValues {
            kind,
            lb_mult,
            mults: vec![lb_mult; backends],
            counters: vec![0; backends],
            outstanding: vec![0; backends],
            ewma_micros: vec![0; backends],
            ewma_rem: vec![0; backends],
            scores: vec![0; backends],
            rng: SplitMix64::new(seed),
        }
    }

    /// Applies mod_jk-style `lbfactor` capacity weights: a backend with
    /// weight `w` accumulates `lcm(weights)/w` per unit of work, so
    /// higher-weight backends stay "cheapest" longer and receive a
    /// proportionally larger share.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the backend count or any
    /// weight is zero.
    pub fn set_weights(&mut self, weights: &[u64]) {
        assert_eq!(weights.len(), self.mults.len(), "weights length mismatch");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let l = weights.iter().copied().fold(1u64, lcm);
        for (m, &w) in self.mults.iter_mut().zip(weights) {
            *m = self.lb_mult.saturating_mul(l / w);
        }
    }

    /// The per-backend increment units currently in force.
    pub fn mults(&self) -> &[u64] {
        &self.mults
    }

    /// The policy in force.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The ranking score vector (index = backend index). For the paper's
    /// policies this is the lb_value of Algorithms 2–4.
    pub fn values(&self) -> &[u64] {
        &self.scores
    }

    /// The ranking score of one backend.
    pub fn value(&self, b: BackendId) -> u64 {
        self.scores[b.0]
    }

    /// Requests currently outstanding on one backend.
    pub fn outstanding(&self, b: BackendId) -> u64 {
        self.outstanding[b.0]
    }

    /// The latency EWMA of one backend, in microseconds.
    pub fn ewma_micros(&self, b: BackendId) -> u64 {
        self.ewma_micros[b.0]
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` if there are no backends (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// A request was assigned to `b` (endpoint acquired, about to be
    /// sent). `traffic_bytes` is the request+response size estimate
    /// (unused by the counting policies at this hook).
    pub fn on_assign(&mut self, b: BackendId, traffic_bytes: u64) {
        let _ = traffic_bytes;
        self.outstanding[b.0] = self.outstanding[b.0].saturating_add(1);
        if self.kind == PolicyKind::RoundRobin {
            self.counters[b.0] = self.counters[b.0].saturating_add(self.mults[b.0]);
        }
        self.refresh(b);
    }

    /// A response was received from `b` for a request of `traffic_bytes`
    /// total message size, `latency` after its assignment.
    pub fn on_complete(&mut self, b: BackendId, traffic_bytes: u64, latency: SimDuration) {
        self.outstanding[b.0] = self.outstanding[b.0].saturating_sub(1);
        match self.kind {
            PolicyKind::TotalRequest => {
                self.counters[b.0] = self.counters[b.0].saturating_add(self.mults[b.0]);
            }
            PolicyKind::TotalTraffic => {
                self.counters[b.0] = self.counters[b.0]
                    .saturating_add(traffic_bytes.saturating_mul(self.mults[b.0]));
            }
            _ => {}
        }
        if matches!(self.kind, PolicyKind::LeastEwmaLatency | PolicyKind::C3) {
            let prev = self.ewma_micros[b.0];
            let sample = latency.as_micros();
            // One division with the remainder carried forward: flooring
            // the decay term alone (`prev·3/10 = 0` for prev < 4) would
            // freeze small EWMAs above zero forever.
            let total = u128::from(prev) * u128::from(EWMA_DEN - EWMA_NUM)
                + u128::from(sample) * u128::from(EWMA_NUM)
                + u128::from(self.ewma_rem[b.0]);
            self.ewma_micros[b.0] = u64::try_from(total / u128::from(EWMA_DEN)).unwrap_or(u64::MAX);
            self.ewma_rem[b.0] = (total % u128::from(EWMA_DEN)) as u64;
        }
        self.refresh(b);
    }

    /// A request assigned to `b` was aborted before any response (e.g.
    /// the whole routing attempt was retransmitted): the outstanding
    /// count drops, cumulative counters are untouched.
    pub fn on_abort(&mut self, b: BackendId) {
        self.outstanding[b.0] = self.outstanding[b.0].saturating_sub(1);
        self.refresh(b);
    }

    /// mod_jk's periodic "maintain" aging: halve every cumulative counter
    /// and EWMA. Off by default in experiments (the paper's pseudo-code
    /// has no aging); used by the aging ablation.
    pub fn decay(&mut self) {
        for v in &mut self.counters {
            *v /= 2;
        }
        for v in &mut self.ewma_micros {
            *v /= 2;
        }
        for v in &mut self.ewma_rem {
            *v = 0;
        }
        for i in 0..self.scores.len() {
            self.refresh(BackendId(i));
        }
    }

    fn refresh(&mut self, b: BackendId) {
        self.scores[b.0] = self.score(b.0);
    }

    fn score(&self, i: usize) -> u64 {
        match self.kind {
            PolicyKind::TotalRequest | PolicyKind::TotalTraffic | PolicyKind::RoundRobin => {
                self.counters[i]
            }
            PolicyKind::CurrentLoad | PolicyKind::Jsq(_) | PolicyKind::DetectorDriven => {
                self.outstanding[i].saturating_mul(self.mults[i])
            }
            PolicyKind::Random => 0,
            PolicyKind::LeastEwmaLatency => self.ewma_micros[i],
            PolicyKind::C3 => {
                // EWMA × (1 + outstanding)³, computed in u128 and
                // saturated: the C3 "cubic replica selection" rank.
                let q = u128::from(self.outstanding[i]) + 1;
                let rank = u128::from(self.ewma_micros[i]).saturating_mul(q * q * q);
                u64::try_from(rank).unwrap_or(u64::MAX)
            }
        }
    }

    /// Picks the next candidate among backends marked `true` in
    /// `eligible`: the minimum-score backend with deterministic
    /// round-robin tie-breaking starting at `cursor` — or a uniform
    /// random eligible backend under [`PolicyKind::Random`].
    ///
    /// Returns `None` if no backend is eligible.
    ///
    /// # Panics
    ///
    /// Panics if `eligible.len()` differs from the backend count.
    pub fn select_min(&mut self, eligible: &[bool], cursor: usize) -> Option<BackendId> {
        assert_eq!(
            eligible.len(),
            self.scores.len(),
            "eligibility mask size mismatch"
        );
        if self.kind == PolicyKind::Random {
            let candidates: Vec<usize> = (0..self.scores.len()).filter(|&i| eligible[i]).collect();
            if candidates.is_empty() {
                return None;
            }
            // An unbiased bounded draw: `next_u64() as usize % len` has
            // modulo bias and truncates to 32 bits on 32-bit targets.
            let pick = self.rng.next_bounded(candidates.len() as u64) as usize;
            return Some(BackendId(candidates[pick]));
        }
        if let PolicyKind::Jsq(d) = self.kind {
            let mut candidates: Vec<usize> =
                (0..self.scores.len()).filter(|&i| eligible[i]).collect();
            if candidates.is_empty() {
                return None;
            }
            // Partial Fisher–Yates: the first `d` slots become a uniform
            // sample without replacement, then the least-loaded sampled
            // backend wins (first in sample order on ties).
            let d = usize::from(d.max(1)).min(candidates.len());
            for k in 0..d {
                let j = k + self.rng.next_bounded((candidates.len() - k) as u64) as usize;
                candidates.swap(k, j);
            }
            let mut best = candidates[0];
            for &i in &candidates[1..d] {
                if self.scores[i] < self.scores[best] {
                    best = i;
                }
            }
            return Some(BackendId(best));
        }
        let n = self.scores.len();
        let mut best: Option<(u64, usize)> = None;
        for offset in 0..n {
            let i = (cursor + offset) % n;
            if !eligible[i] {
                continue;
            }
            let v = self.scores[i];
            match best {
                // Strict `<` keeps the first (round-robin-ordered) minimum.
                Some((bv, _)) if v >= bv => {}
                _ => best = Some((v, i)),
            }
        }
        best.map(|(_, i)| BackendId(i))
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    // Saturating: large coprime weights overflow u64 (debug builds used
    // to panic here, release builds produced wrapped garbage mults). A
    // saturated lcm still yields positive, correctly *ordered* mults
    // through `lb_mult × (l / w)` — higher weight, smaller increment.
    (a / gcd(a, b).max(1)).saturating_mul(b)
}

#[cfg(test)]
impl LbValues {
    /// Test-only helper to grow the outstanding count without assignments.
    fn outstanding_bump_for_test(&mut self) {
        self.outstanding[0] = self.outstanding[0].saturating_add(1);
        self.refresh(BackendId(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: usize) -> BackendId {
        BackendId(i)
    }

    const NO_LAT: SimDuration = SimDuration::ZERO;

    #[test]
    fn total_request_counts_completions_only() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 2, 1);
        lb.on_assign(b(0), 1_000);
        assert_eq!(lb.values(), &[0, 0], "assign must not move total_request");
        lb.on_complete(b(0), 1_000, NO_LAT);
        assert_eq!(lb.values(), &[1, 0]);
    }

    #[test]
    fn total_traffic_accumulates_bytes_on_completion() {
        let mut lb = LbValues::new(PolicyKind::TotalTraffic, 2, 1);
        lb.on_assign(b(1), 2_000);
        assert_eq!(lb.values(), &[0, 0]);
        lb.on_complete(b(1), 2_000, NO_LAT);
        lb.on_complete(b(1), 500, NO_LAT);
        assert_eq!(lb.values(), &[0, 2_500]);
    }

    #[test]
    fn total_traffic_respects_lb_mult() {
        let mut lb = LbValues::new(PolicyKind::TotalTraffic, 1, 3);
        lb.on_complete(b(0), 10, NO_LAT);
        assert_eq!(lb.value(b(0)), 30);
    }

    #[test]
    fn current_load_tracks_outstanding() {
        let mut lb = LbValues::new(PolicyKind::CurrentLoad, 2, 1);
        lb.on_assign(b(0), 0);
        lb.on_assign(b(0), 0);
        lb.on_assign(b(1), 0);
        assert_eq!(lb.values(), &[2, 1]);
        lb.on_complete(b(0), 0, NO_LAT);
        assert_eq!(lb.values(), &[1, 1]);
    }

    #[test]
    fn current_load_never_underflows() {
        let mut lb = LbValues::new(PolicyKind::CurrentLoad, 1, 5);
        lb.on_complete(b(0), 0, NO_LAT);
        assert_eq!(lb.value(b(0)), 0);
        lb.on_assign(b(0), 0);
        lb.on_complete(b(0), 0, NO_LAT);
        lb.on_complete(b(0), 0, NO_LAT);
        assert_eq!(lb.value(b(0)), 0);
    }

    #[test]
    fn abort_releases_outstanding_but_not_counters() {
        let mut cl = LbValues::new(PolicyKind::CurrentLoad, 1, 1);
        cl.on_assign(b(0), 0);
        cl.on_abort(b(0));
        assert_eq!(cl.value(b(0)), 0);

        let mut tr = LbValues::new(PolicyKind::TotalRequest, 1, 1);
        tr.on_complete(b(0), 0, NO_LAT);
        tr.on_abort(b(0));
        assert_eq!(tr.value(b(0)), 1, "abort must not touch total_request");
    }

    #[test]
    fn round_robin_counts_assignments() {
        let mut lb = LbValues::new(PolicyKind::RoundRobin, 3, 1);
        lb.on_assign(b(0), 0);
        lb.on_assign(b(0), 0);
        lb.on_assign(b(1), 0);
        // No completions at all, yet the counters move.
        assert_eq!(lb.values(), &[2, 1, 0]);
        assert_eq!(lb.select_min(&[true; 3], 0), Some(b(2)));
    }

    #[test]
    fn round_robin_rotates_strictly() {
        let mut lb = LbValues::new(PolicyKind::RoundRobin, 3, 1);
        let mut picks = Vec::new();
        for _ in 0..6 {
            let p = lb.select_min(&[true; 3], 0).unwrap();
            lb.on_assign(p, 0);
            picks.push(p.0);
        }
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_picks_only_eligible_and_covers_all() {
        let mut lb = LbValues::new(PolicyKind::Random, 4, 1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let p = lb.select_min(&[true, false, true, true], 0).unwrap();
            assert_ne!(p.0, 1, "picked an ineligible backend");
            seen[p.0] = true;
        }
        assert!(seen[0] && seen[2] && seen[3]);
        assert_eq!(lb.select_min(&[false; 4], 0), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = LbValues::with_seed(PolicyKind::Random, 4, 1, 9);
        let mut c = LbValues::with_seed(PolicyKind::Random, 4, 1, 9);
        for _ in 0..50 {
            assert_eq!(a.select_min(&[true; 4], 0), c.select_min(&[true; 4], 0));
        }
    }

    #[test]
    fn random_draw_is_unbiased_over_the_candidate_set() {
        // Regression for the `next_u64() as usize % len` draw: beyond the
        // modulo bias, the `as usize` cast truncates to 32 bits on 32-bit
        // targets. The bounded draw must keep every candidate reachable
        // and roughly uniform.
        let mut lb = LbValues::with_seed(PolicyKind::Random, 3, 1, 77);
        let mut counts = [0u64; 3];
        for _ in 0..3_000 {
            let p = lb.select_min(&[true; 3], 0).unwrap();
            counts[p.0] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1_200).contains(&c),
                "draws far from uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn jsq_picks_least_outstanding_and_is_deterministic() {
        // d ≥ backend count degenerates to exact least-outstanding.
        let mut lb = LbValues::with_seed(PolicyKind::Jsq(4), 3, 1, 5);
        lb.on_assign(b(0), 0);
        lb.on_assign(b(0), 0);
        lb.on_assign(b(1), 0);
        assert_eq!(lb.select_min(&[true; 3], 0), Some(b(2)));
        // Same seed, same draws.
        let mut x = LbValues::with_seed(PolicyKind::Jsq(2), 4, 1, 11);
        let mut y = LbValues::with_seed(PolicyKind::Jsq(2), 4, 1, 11);
        for _ in 0..50 {
            assert_eq!(x.select_min(&[true; 4], 0), y.select_min(&[true; 4], 0));
        }
    }

    #[test]
    fn jsq_never_picks_ineligible() {
        let mut lb = LbValues::with_seed(PolicyKind::Jsq(2), 4, 1, 13);
        for _ in 0..200 {
            let p = lb.select_min(&[true, false, true, false], 0).unwrap();
            assert!(p.0 == 0 || p.0 == 2, "sampled an ineligible backend");
        }
        assert_eq!(lb.select_min(&[false; 4], 0), None);
    }

    #[test]
    fn ewma_latency_tracks_response_times() {
        let mut lb = LbValues::new(PolicyKind::LeastEwmaLatency, 2, 1);
        lb.on_assign(b(0), 0);
        lb.on_complete(b(0), 0, SimDuration::from_millis(10));
        assert_eq!(lb.value(b(0)), 3_000); // 0.3 × 10ms
        lb.on_assign(b(0), 0);
        lb.on_complete(b(0), 0, SimDuration::from_millis(10));
        assert_eq!(lb.value(b(0)), 5_100); // 0.7 × 3000 + 0.3 × 10000
                                           // The slower backend is not picked.
        assert_eq!(lb.select_min(&[true, true], 0), Some(b(1)));
    }

    #[test]
    fn ewma_decays_to_zero_for_small_values() {
        // Regression: the floored update `prev - prev·3/10 + sample·3/10`
        // left any `prev < 4` fixed forever when samples dropped to zero,
        // so a stale rank could stick permanently.
        let mut lb = LbValues::new(PolicyKind::LeastEwmaLatency, 1, 1);
        lb.on_complete(b(0), 0, SimDuration::from_micros(10));
        assert_eq!(lb.value(b(0)), 3);
        for _ in 0..20 {
            lb.on_complete(b(0), 0, SimDuration::ZERO);
        }
        assert_eq!(lb.value(b(0)), 0, "small EWMA must decay to zero");
    }

    #[test]
    fn ewma_latency_lags_during_a_freeze() {
        // The extension's point: a frozen backend completes nothing, so
        // its (good) EWMA never moves and it keeps being selected.
        let mut lb = LbValues::new(PolicyKind::LeastEwmaLatency, 2, 1);
        // Backend 0 was historically fast; backend 1 slower.
        lb.on_complete(b(0), 0, SimDuration::from_millis(1));
        lb.on_complete(b(1), 0, SimDuration::from_millis(5));
        // Backend 0 freezes; assignments pile up with no completions.
        for _ in 0..10 {
            let p = lb.select_min(&[true, true], 0).unwrap();
            assert_eq!(
                p,
                b(0),
                "ewma_latency should (wrongly) keep picking the frozen one"
            );
            lb.on_assign(p, 0);
        }
    }

    #[test]
    fn c3_penalizes_outstanding_cubically() {
        let mut lb = LbValues::new(PolicyKind::C3, 2, 1);
        lb.on_complete(b(0), 0, SimDuration::from_millis(1));
        lb.on_complete(b(1), 0, SimDuration::from_millis(5));
        // Initially the fast backend wins.
        assert_eq!(lb.select_min(&[true, true], 0), Some(b(0)));
        // Freeze backend 0: after a few un-completed assignments its
        // cubic rank exceeds the slow-but-idle backend.
        lb.on_assign(b(0), 0);
        lb.on_assign(b(0), 0);
        // rank0 = 300us × (1+2)³ = 8100, rank1 = 1500us × 1 = 1500.
        assert_eq!(lb.select_min(&[true, true], 0), Some(b(1)));
    }

    #[test]
    fn c3_rank_saturates_instead_of_overflowing() {
        let mut lb = LbValues::new(PolicyKind::C3, 1, 1);
        lb.on_complete(b(0), 0, SimDuration::from_secs(3_600));
        for _ in 0..5_000_000 {
            lb.outstanding_bump_for_test();
        }
        assert_eq!(lb.value(b(0)), u64::MAX);
    }

    #[test]
    fn select_min_picks_lowest() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 3, 1);
        lb.on_complete(b(0), 0, NO_LAT);
        lb.on_complete(b(0), 0, NO_LAT);
        lb.on_complete(b(1), 0, NO_LAT);
        // values [2, 1, 0]
        assert_eq!(lb.select_min(&[true; 3], 0), Some(b(2)));
    }

    #[test]
    fn select_min_round_robin_ties() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 4, 1);
        // All zero: cursor decides.
        assert_eq!(lb.select_min(&[true; 4], 0), Some(b(0)));
        assert_eq!(lb.select_min(&[true; 4], 1), Some(b(1)));
        assert_eq!(lb.select_min(&[true; 4], 3), Some(b(3)));
        assert_eq!(lb.select_min(&[true; 4], 4), Some(b(0)));
    }

    #[test]
    fn select_min_skips_ineligible() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 3, 1);
        lb.on_complete(b(1), 0, NO_LAT); // values [0, 1, 0]
        assert_eq!(lb.select_min(&[false, true, true], 0), Some(b(2)));
        assert_eq!(lb.select_min(&[false, true, false], 0), Some(b(1)));
        assert_eq!(lb.select_min(&[false, false, false], 0), None);
    }

    #[test]
    fn decay_halves_counters_and_ewma() {
        let mut lb = LbValues::new(PolicyKind::TotalTraffic, 2, 1);
        lb.on_complete(b(0), 100, NO_LAT);
        lb.on_complete(b(1), 7, NO_LAT);
        lb.decay();
        assert_eq!(lb.values(), &[50, 3]);

        let mut lat = LbValues::new(PolicyKind::LeastEwmaLatency, 1, 1);
        lat.on_complete(b(0), 0, SimDuration::from_millis(10));
        lat.decay();
        assert_eq!(lat.value(b(0)), 1_500);
    }

    #[test]
    fn weighted_round_robin_follows_capacity() {
        let mut lb = LbValues::new(PolicyKind::RoundRobin, 2, 1);
        lb.set_weights(&[2, 1]); // backend 0 has twice the capacity
        let mut counts = [0u64; 2];
        for _ in 0..300 {
            let p = lb.select_min(&[true, true], 0).unwrap();
            counts[p.0] += 1;
            lb.on_assign(p, 0);
        }
        assert_eq!(counts, [200, 100], "2:1 weights must yield a 2:1 split");
    }

    #[test]
    fn weighted_total_request_follows_capacity() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 2, 1);
        lb.set_weights(&[3, 1]);
        let mut counts = [0u64; 2];
        for _ in 0..400 {
            let p = lb.select_min(&[true, true], 0).unwrap();
            counts[p.0] += 1;
            lb.on_assign(p, 0);
            lb.on_complete(p, 0, NO_LAT);
        }
        assert_eq!(counts, [300, 100], "3:1 weights must yield a 3:1 split");
    }

    #[test]
    fn weighted_current_load_tolerates_more_outstanding() {
        let mut lb = LbValues::new(PolicyKind::CurrentLoad, 2, 1);
        lb.set_weights(&[2, 1]);
        // Backend 0 (weight 2) with 1 outstanding scores 1×1=1; backend 1
        // (weight 1) with 1 outstanding scores 1×2=2 — so backend 0 is
        // preferred until it carries twice the load.
        lb.on_assign(b(0), 0);
        lb.on_assign(b(1), 0);
        assert_eq!(lb.select_min(&[true, true], 0), Some(b(0)));
    }

    #[test]
    fn weight_lcm_overflow_saturates_and_keeps_ordering() {
        // Regression: lcm(2⁴⁰, 2⁴⁰−1) ≈ 2⁸⁰ overflowed the unchecked
        // `a / gcd * b` (a debug-build panic, wrapped garbage in release).
        // The saturated lcm must still produce positive mults ordered
        // inversely to the weights.
        let big = 1u64 << 40;
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 2, 1);
        lb.set_weights(&[big, big - 1]); // coprime
        let mults = lb.mults().to_vec();
        assert!(mults.iter().all(|&m| m > 0), "mults must stay positive");
        assert!(
            mults[0] < mults[1],
            "higher weight must keep the smaller increment: {mults:?}"
        );
    }

    #[test]
    #[should_panic(expected = "weights length mismatch")]
    fn wrong_weight_count_panics() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 2, 1);
        lb.set_weights(&[1]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_panics() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 2, 1);
        lb.set_weights(&[1, 0]);
    }

    #[test]
    fn names_match_the_paper_and_extensions() {
        assert_eq!(PolicyKind::TotalRequest.name(), "total_request");
        assert_eq!(PolicyKind::TotalTraffic.name(), "total_traffic");
        assert_eq!(PolicyKind::CurrentLoad.name(), "current_load");
        assert_eq!(PolicyKind::RoundRobin.name(), "round_robin");
        assert_eq!(PolicyKind::Random.name(), "random");
        assert_eq!(PolicyKind::LeastEwmaLatency.name(), "ewma_latency");
        assert_eq!(PolicyKind::C3.name(), "c3");
        assert_eq!(PolicyKind::Jsq(2).name(), "jsq_d");
        assert_eq!(PolicyKind::DetectorDriven.name(), "detector_driven");
    }

    #[test]
    fn classification_flags() {
        assert!(PolicyKind::TotalRequest.is_cumulative());
        assert!(PolicyKind::TotalTraffic.is_cumulative());
        assert!(PolicyKind::RoundRobin.is_cumulative());
        assert!(!PolicyKind::CurrentLoad.is_cumulative());
        assert!(PolicyKind::CurrentLoad.reacts_to_current_state());
        assert!(PolicyKind::C3.reacts_to_current_state());
        assert!(!PolicyKind::LeastEwmaLatency.reacts_to_current_state());
        assert!(PolicyKind::Jsq(2).reacts_to_current_state());
        assert!(PolicyKind::DetectorDriven.reacts_to_current_state());
        assert!(!PolicyKind::DetectorDriven.is_cumulative());
    }

    #[test]
    fn all_extended_is_a_superset() {
        let basic = PolicyKind::all();
        let ext = PolicyKind::all_extended();
        assert!(basic.iter().all(|p| ext.contains(p)));
        assert_eq!(ext.len(), 7);
        // The baselines are deliberately disjoint from the extension set.
        assert!(PolicyKind::baselines().iter().all(|p| !ext.contains(p)));
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_panics() {
        LbValues::new(PolicyKind::TotalRequest, 0, 1);
    }

    #[test]
    #[should_panic(expected = "lb_mult must be positive")]
    fn zero_mult_panics() {
        LbValues::new(PolicyKind::TotalRequest, 1, 0);
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn wrong_mask_size_panics() {
        let mut lb = LbValues::new(PolicyKind::TotalRequest, 2, 1);
        lb.select_min(&[true], 0);
    }
}
