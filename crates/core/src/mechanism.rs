//! The `get_endpoint` mechanism (paper Section IV, Algorithm 1) and its
//! remedy.
//!
//! After the policy picks a candidate, the balancer must obtain an
//! *endpoint* — a free connection from the worker's pool to that backend.
//! The two mechanisms differ in what happens when no endpoint is free:
//!
//! * [`MechanismKind::Original`] — Algorithm 1: poll the same candidate
//!   every `retry_sleep` (default 100 ms, `JK_SLEEP_DEF`) until
//!   `cache_acquire_timeout` (default 300 ms) elapses, **while the backend
//!   stays Available and the Apache worker thread stays blocked**. Good
//!   for a permanent failure (the wait is short relative to the final
//!   Error verdict), disastrous for a millibottleneck (the wait is the
//!   whole bottleneck, and every other worker piles onto the same
//!   candidate meanwhile).
//! * [`MechanismKind::SkipToBusy`] — the paper's remedy: a single
//!   attempt; on failure the candidate is immediately marked Busy and the
//!   worker reselects among the remaining candidates.

use mlb_simkernel::time::SimDuration;

/// Which endpoint-acquisition mechanism a balancer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Algorithm 1: blocking poll loop with the 3-state assumption intact.
    Original,
    /// The mechanism remedy: treat millibottleneck as Busy immediately.
    SkipToBusy,
    /// Extension: mod_jk's CPing/CPong health probe — after acquiring an
    /// endpoint, ping the backend and only send the request if it answers
    /// within [`BalancerConfig::probe_timeout`]. A frozen backend fails
    /// the probe even when its pool has free endpoints, so this mechanism
    /// detects millibottlenecks that `SkipToBusy` (which only reacts to
    /// pool exhaustion) lets through — at the price of one extra round
    /// trip per request.
    ///
    /// [`BalancerConfig::probe_timeout`]: crate::config::BalancerConfig::probe_timeout
    ProbeFirst,
}

impl MechanismKind {
    /// Human-readable name used in tables and labels.
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::Original => "original get_endpoint",
            MechanismKind::SkipToBusy => "modified get_endpoint",
            MechanismKind::ProbeFirst => "cping/cpong probe",
        }
    }

    /// `true` if the driver must probe the backend after acquiring an
    /// endpoint and before sending the request.
    pub fn probes_before_send(self) -> bool {
        self == MechanismKind::ProbeFirst
    }
}

/// What a worker should do after a failed endpoint acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointAdvice {
    /// Sleep for the given duration, then try the same candidate again
    /// (the candidate remains Available; the worker remains blocked).
    RetryAfter(SimDuration),
    /// Stop waiting: mark the candidate Busy and reselect a different one.
    GiveUp,
}

/// Computes the post-failure advice for a mechanism.
///
/// `elapsed` is how long this worker has already been waiting on this
/// candidate (zero on the first failure).
///
/// # Examples
///
/// ```
/// use mlb_core::mechanism::{advice, EndpointAdvice, MechanismKind};
/// use mlb_simkernel::time::SimDuration;
///
/// let timeout = SimDuration::from_millis(300);
/// let sleep = SimDuration::from_millis(100);
///
/// // Original: poll at 0/100/200 ms, give up at 300 ms.
/// assert_eq!(
///     advice(MechanismKind::Original, SimDuration::ZERO, timeout, sleep),
///     EndpointAdvice::RetryAfter(sleep)
/// );
/// assert_eq!(
///     advice(MechanismKind::Original, SimDuration::from_millis(200), timeout, sleep),
///     EndpointAdvice::RetryAfter(sleep)
/// );
/// assert_eq!(
///     advice(MechanismKind::Original, timeout, timeout, sleep),
///     EndpointAdvice::GiveUp
/// );
///
/// // The remedy never waits.
/// assert_eq!(
///     advice(MechanismKind::SkipToBusy, SimDuration::ZERO, timeout, sleep),
///     EndpointAdvice::GiveUp
/// );
/// ```
pub fn advice(
    kind: MechanismKind,
    elapsed: SimDuration,
    cache_acquire_timeout: SimDuration,
    retry_sleep: SimDuration,
) -> EndpointAdvice {
    match kind {
        // Neither remedy ever blocks a worker on an exhausted pool.
        MechanismKind::SkipToBusy | MechanismKind::ProbeFirst => EndpointAdvice::GiveUp,
        MechanismKind::Original => {
            // Algorithm 1: `while (retry * JK_SLEEP_DEF) < cache_acquire_timeout`.
            if elapsed.saturating_add(retry_sleep) <= cache_acquire_timeout {
                EndpointAdvice::RetryAfter(retry_sleep)
            } else {
                EndpointAdvice::GiveUp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMEOUT: SimDuration = SimDuration::from_millis(300);
    const SLEEP: SimDuration = SimDuration::from_millis(100);

    fn orig(elapsed_ms: u64) -> EndpointAdvice {
        advice(
            MechanismKind::Original,
            SimDuration::from_millis(elapsed_ms),
            TIMEOUT,
            SLEEP,
        )
    }

    #[test]
    fn original_polls_three_times_then_gives_up() {
        assert_eq!(orig(0), EndpointAdvice::RetryAfter(SLEEP));
        assert_eq!(orig(100), EndpointAdvice::RetryAfter(SLEEP));
        assert_eq!(orig(200), EndpointAdvice::RetryAfter(SLEEP));
        assert_eq!(orig(300), EndpointAdvice::GiveUp);
        assert_eq!(orig(1_000), EndpointAdvice::GiveUp);
    }

    #[test]
    fn original_with_odd_elapsed_gives_up_past_budget() {
        assert_eq!(orig(201), EndpointAdvice::GiveUp);
        assert_eq!(orig(199), EndpointAdvice::RetryAfter(SLEEP));
    }

    #[test]
    fn skip_to_busy_never_waits() {
        for elapsed in [0u64, 1, 100, 500] {
            assert_eq!(
                advice(
                    MechanismKind::SkipToBusy,
                    SimDuration::from_millis(elapsed),
                    TIMEOUT,
                    SLEEP
                ),
                EndpointAdvice::GiveUp
            );
        }
    }

    #[test]
    fn names() {
        assert_eq!(MechanismKind::Original.name(), "original get_endpoint");
        assert_eq!(MechanismKind::SkipToBusy.name(), "modified get_endpoint");
    }
}
