//! # mlb-core — load balancing under millibottlenecks
//!
//! The primary contribution of the reproduced paper, *"Limitations of Load
//! Balancing Mechanisms for N-Tier Systems in the Presence of
//! Millibottlenecks"* (ICDCS 2017): a faithful model of Apache mod_jk's
//! two-level load balancer, the instability it exhibits when a backend
//! suffers a millibottleneck, and the paper's two remedies.
//!
//! ## The problem
//!
//! A **millibottleneck** is a full resource saturation lasting only tens
//! to hundreds of milliseconds (e.g. a dirty-page flush freezing a Tomcat
//! server). mod_jk's policies rank backends by *cumulative* counters
//! (requests or bytes **served**), so a frozen backend — which serves
//! nothing — keeps the minimum lb_value and attracts **all** new requests
//! exactly while it can handle none. Its mechanism (`get_endpoint`)
//! compounds this by blocking the Apache worker in a 300 ms polling loop
//! while the backend stays *Available*. The result: worker exhaustion,
//! accept-queue overflow, dropped packets, and second-scale response
//! times.
//!
//! ## The remedies
//!
//! * **Mechanism level** ([`MechanismKind::SkipToBusy`]) — treat a failed
//!   endpoint acquisition as Busy immediately and reselect.
//! * **Policy level** ([`PolicyKind::CurrentLoad`]) — rank by *currently
//!   outstanding* requests; a frozen backend's rank rises within a few
//!   requests and it stops being picked.
//!
//! ## Example
//!
//! ```
//! use mlb_core::prelude::*;
//! use mlb_simkernel::time::SimTime;
//!
//! // The paper's policy remedy with mod_jk's default mechanism.
//! let cfg = BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::Original);
//! let mut lb = Balancer::new(cfg, 4)?;
//!
//! let now = SimTime::ZERO;
//! let backend = lb.select(now, &[false; 4]).expect("all backends available");
//! lb.endpoint_acquired(now, backend);
//! lb.response_received(now, backend, 2_048, mlb_simkernel::time::SimDuration::from_millis(3));
//! assert_eq!(lb.lb_values()[backend.index()], 0); // outstanding count back to 0
//! # Ok::<(), mlb_core::balancer::InvalidConfigError>(())
//! ```
//!
//! This crate is pure decision logic with no simulator dependency; the
//! `mlb-ntier` crate drives it inside the full 3-tier discrete-event
//! simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balancer;
pub mod config;
pub mod mechanism;
pub mod policy;
pub mod state;
pub mod types;

pub use balancer::{Balancer, BalancerStats, InvalidConfigError};
pub use config::BalancerConfig;
pub use mechanism::{EndpointAdvice, MechanismKind};
pub use policy::{LbValues, PolicyKind};
pub use state::{BackendState, WorkerState};
pub use types::BackendId;

/// Convenient glob-import surface: `use mlb_core::prelude::*;`.
pub mod prelude {
    pub use crate::balancer::{Balancer, BalancerStats};
    pub use crate::config::BalancerConfig;
    pub use crate::mechanism::{EndpointAdvice, MechanismKind};
    pub use crate::policy::{LbValues, PolicyKind};
    pub use crate::state::WorkerState;
    pub use crate::types::BackendId;
}
