//! The balancer facade: mod_jk's two-level scheduler.
//!
//! [`Balancer`] combines a policy ([`LbValues`]), the 3-state backend
//! model ([`BackendState`]) and a mechanism
//! ([`MechanismKind`](crate::mechanism::MechanismKind)) behind the small
//! set of callbacks an event-driven server model needs:
//!
//! 1. [`Balancer::select`] — pick the Available candidate with minimum
//!    lb_value (round-robin among ties);
//! 2. the driver attempts a pool acquisition for the chosen candidate;
//! 3. on failure, [`Balancer::endpoint_failed`] returns the mechanism's
//!    advice — keep polling (original) or mark Busy and reselect (remedy);
//! 4. on success, [`Balancer::endpoint_acquired`]; when the response
//!    arrives, [`Balancer::response_received`].
//!
//! The balancer is deliberately free of any simulator dependency: it is
//! pure decision logic, driven entirely through these callbacks, which is
//! what makes the paper's instability analyzable in isolation (see the
//! crate-level example).

use crate::config::BalancerConfig;
use crate::mechanism::{advice, EndpointAdvice};
use crate::policy::{LbValues, PolicyKind};
use crate::state::{BackendState, WorkerState};
use crate::types::BackendId;
use mlb_simkernel::time::{SimDuration, SimTime};
use std::error::Error;
use std::fmt;

/// Error returned when a [`BalancerConfig`] fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError {
    message: String,
}

impl fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid balancer config: {}", self.message)
    }
}

impl Error for InvalidConfigError {}

/// Lifetime counters of one balancer instance.
#[derive(Debug, Clone)]
pub struct BalancerStats {
    /// Successful selections.
    pub selections: u64,
    /// Selections that found no eligible candidate.
    pub no_candidate: u64,
    /// Endpoint acquisitions per backend.
    pub assignments: Vec<u64>,
    /// Responses received per backend.
    pub completions: Vec<u64>,
    /// Failed acquisitions answered with "retry" (original mechanism).
    pub retries_advised: u64,
    /// Failed acquisitions answered with "give up" (→ Busy mark).
    pub giveups: u64,
    /// Requests aborted after assignment (e.g. retransmitted).
    pub aborts: u64,
    /// CPing probes that timed out (ProbeFirst mechanism).
    pub probe_failures: u64,
    /// Selections where a detector stall signal vetoed at least one
    /// otherwise-eligible backend (DetectorDriven policy only).
    pub stall_vetoes: u64,
}

impl BalancerStats {
    fn new(backends: usize) -> Self {
        BalancerStats {
            selections: 0,
            no_candidate: 0,
            assignments: vec![0; backends],
            completions: vec![0; backends],
            retries_advised: 0,
            giveups: 0,
            aborts: 0,
            probe_failures: 0,
            stall_vetoes: 0,
        }
    }
}

/// One Apache worker process's load balancer over a set of Tomcat
/// backends.
///
/// # Examples
///
/// The millibottleneck instability in eight lines — backend 0 freezes,
/// and under `total_request` every subsequent pick lands on it:
///
/// ```
/// use mlb_core::prelude::*;
/// use mlb_simkernel::time::{SimDuration, SimTime};
///
/// let cfg = BalancerConfig::with(PolicyKind::TotalRequest, MechanismKind::Original);
/// let mut lb = Balancer::new(cfg, 4).unwrap();
/// let now = SimTime::ZERO;
///
/// // Healthy traffic: backends 1-3 complete requests, backend 0 is frozen
/// // by a millibottleneck and completes nothing.
/// for b in 1..4 {
///     lb.endpoint_acquired(now, BackendId(b));
///     lb.response_received(now, BackendId(b), 1_000, SimDuration::from_millis(3));
/// }
/// // Every new selection now lands on the frozen backend — the instability.
/// for _ in 0..5 {
///     assert_eq!(lb.select(now, &[false; 4]), Some(BackendId(0)));
///     lb.endpoint_acquired(now, BackendId(0));
///     // ...no response ever arrives while it is frozen...
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Balancer {
    config: BalancerConfig,
    lb: LbValues,
    states: Vec<BackendState>,
    /// Per-backend stall signal from the online millibottleneck
    /// detector; consulted only by [`PolicyKind::DetectorDriven`].
    stall_signals: Vec<bool>,
    rr_cursor: usize,
    last_decay: SimTime,
    stats: BalancerStats,
}

impl Balancer {
    /// Creates a balancer over `backends` candidates.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] if the configuration fails
    /// [`BalancerConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics if `backends` is zero.
    pub fn new(config: BalancerConfig, backends: usize) -> Result<Self, InvalidConfigError> {
        config
            .validate()
            .map_err(|message| InvalidConfigError { message })?;
        assert!(backends > 0, "need at least one backend");
        if let Some(w) = &config.weights {
            if w.len() != backends {
                return Err(InvalidConfigError {
                    message: format!("{} weights configured for {} backends", w.len(), backends),
                });
            }
        }
        let mut lb = LbValues::with_seed(config.policy, backends, config.lb_mult, config.seed);
        if let Some(w) = &config.weights {
            lb.set_weights(w);
        }
        Ok(Balancer {
            lb,
            states: vec![BackendState::new(); backends],
            stall_signals: vec![false; backends],
            rr_cursor: 0,
            last_decay: SimTime::ZERO,
            stats: BalancerStats::new(backends),
            config,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &BalancerConfig {
        &self.config
    }

    /// Number of backends.
    pub fn backends(&self) -> usize {
        self.lb.len()
    }

    /// Current lb_value per backend (index = backend index).
    pub fn lb_values(&self) -> &[u64] {
        self.lb.values()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &BalancerStats {
        &self.stats
    }

    /// The 3-state view of one backend at `now`.
    pub fn state_of(&self, now: SimTime, b: BackendId) -> WorkerState {
        self.states[b.0].effective(now, &self.config)
    }

    /// Sets or clears the online detector's stall signal for backend
    /// `b`. A signalled backend is vetoed from selection under
    /// [`PolicyKind::DetectorDriven`] until the signal clears (the
    /// driver clears it on the first flag-free detector window — the
    /// deterministic re-admission rule). Other policies ignore signals.
    pub fn signal_stall(&mut self, b: BackendId, stalled: bool) {
        self.stall_signals[b.0] = stalled;
    }

    /// The stall signals currently in force (index = backend index).
    pub fn stall_signals(&self) -> &[bool] {
        &self.stall_signals
    }

    /// Picks the next candidate: the Available backend with minimum
    /// lb_value, round-robin among ties, skipping any backend marked
    /// `true` in `exclude` (candidates this request already gave up on).
    ///
    /// Returns `None` when every backend is Busy/Error/excluded.
    ///
    /// # Panics
    ///
    /// Panics if `exclude.len()` differs from the backend count.
    pub fn select(&mut self, now: SimTime, exclude: &[bool]) -> Option<BackendId> {
        assert_eq!(exclude.len(), self.lb.len(), "exclude mask size mismatch");
        self.maybe_decay(now);
        let mut eligible: Vec<bool> = (0..self.lb.len())
            .map(|i| {
                !exclude[i] && self.states[i].effective(now, &self.config) == WorkerState::Available
            })
            .collect();
        if self.config.policy == PolicyKind::DetectorDriven {
            // Veto backends inside a flagged stall window. If that would
            // leave no candidate at all, ignore the signals: ranking by
            // current load among uniformly-stalled backends beats
            // refusing to route.
            let masked: Vec<bool> = eligible
                .iter()
                .zip(&self.stall_signals)
                .map(|(&e, &s)| e && !s)
                .collect();
            if masked.iter().any(|&e| e) {
                if masked != eligible {
                    self.stats.stall_vetoes += 1;
                }
                eligible = masked;
            }
        }
        match self.lb.select_min(&eligible, self.rr_cursor) {
            Some(b) => {
                self.rr_cursor = (b.0 + 1) % self.lb.len();
                self.stats.selections += 1;
                Some(b)
            }
            None => {
                self.stats.no_candidate += 1;
                None
            }
        }
    }

    /// Reports a failed endpoint acquisition for `b` after `elapsed` of
    /// waiting (zero on the first attempt) and returns the mechanism's
    /// advice. A [`EndpointAdvice::GiveUp`] answer marks the backend Busy
    /// (escalating to Error after repeated streaks).
    pub fn endpoint_failed(
        &mut self,
        now: SimTime,
        b: BackendId,
        elapsed: SimDuration,
    ) -> EndpointAdvice {
        let a = advice(
            self.config.mechanism,
            elapsed,
            self.config.cache_acquire_timeout,
            self.config.retry_sleep,
        );
        match a {
            EndpointAdvice::RetryAfter(_) => self.stats.retries_advised += 1,
            EndpointAdvice::GiveUp => {
                self.stats.giveups += 1;
                self.states[b.0].mark_failed(now, &self.config);
            }
        }
        a
    }

    /// Reports a successful endpoint acquisition: the request is being
    /// sent to `b`. Clears any Busy/Error mark (proof of life) and applies
    /// the policy's assignment hook.
    pub fn endpoint_acquired(&mut self, _now: SimTime, b: BackendId) {
        self.states[b.0].mark_alive();
        self.lb.on_assign(b, 0);
        self.stats.assignments[b.0] += 1;
    }

    /// Reports a completed response from `b` carrying `traffic_bytes`
    /// total message size (request + response), observed `latency` after
    /// its assignment (feeds the latency-aware extension policies).
    pub fn response_received(
        &mut self,
        _now: SimTime,
        b: BackendId,
        traffic_bytes: u64,
        latency: SimDuration,
    ) {
        self.states[b.0].mark_alive();
        self.lb.on_complete(b, traffic_bytes, latency);
        self.stats.completions[b.0] += 1;
    }

    /// Reports a CPing probe timeout on `b` (ProbeFirst mechanism): the
    /// backend is marked Busy exactly as a failed acquisition would, and
    /// the outstanding count from the aborted assignment is released.
    pub fn probe_failed(&mut self, now: SimTime, b: BackendId) {
        self.stats.probe_failures += 1;
        self.states[b.0].mark_failed(now, &self.config);
        self.lb.on_abort(b);
    }

    /// The CPing probe budget configured for this balancer.
    pub fn probe_timeout(&self) -> SimDuration {
        self.config.probe_timeout
    }

    /// `true` if the driver must probe the backend after acquiring an
    /// endpoint and before sending (ProbeFirst mechanism).
    pub fn probes_before_send(&self) -> bool {
        self.config.mechanism.probes_before_send()
    }

    /// Reports that a request assigned to `b` was aborted before any
    /// response (e.g. the client gave up and retransmitted). Releases the
    /// outstanding count under `current_load`.
    pub fn request_aborted(&mut self, b: BackendId) {
        self.lb.on_abort(b);
        self.stats.aborts += 1;
    }

    fn maybe_decay(&mut self, now: SimTime) {
        if let Some(interval) = self.config.decay_interval {
            while now.saturating_since(self.last_decay) >= interval {
                self.lb.decay();
                self.last_decay += interval;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // intentional: mutate one knob at a time
mod tests {
    use super::*;
    use crate::mechanism::MechanismKind;
    use crate::policy::PolicyKind;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn balancer(policy: PolicyKind, mech: MechanismKind, n: usize) -> Balancer {
        Balancer::new(BalancerConfig::with(policy, mech), n).unwrap()
    }

    const NOEX: [bool; 4] = [false; 4];

    /// Drive one complete request through the balancer.
    fn complete_one(lb: &mut Balancer, now: SimTime, b: BackendId, bytes: u64) {
        lb.endpoint_acquired(now, b);
        lb.response_received(now, b, bytes, SimDuration::from_millis(2));
    }

    #[test]
    fn invalid_config_is_an_error() {
        let mut cfg = BalancerConfig::default();
        cfg.lb_mult = 0;
        let err = Balancer::new(cfg, 4).unwrap_err();
        assert!(err.to_string().contains("lb_mult"));
    }

    #[test]
    fn total_request_balances_evenly_when_healthy() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        let mut counts = [0u64; 4];
        for i in 0..400 {
            let now = t(i);
            let b = lb.select(now, &NOEX).unwrap();
            counts[b.0] += 1;
            complete_one(&mut lb, now, b, 1_000);
        }
        assert_eq!(counts, [100, 100, 100, 100]);
        // The paper's observation: healthy lb_values differ by at most 1.
        let values = lb.lb_values();
        let min = values.iter().min().unwrap();
        let max = values.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn total_request_pile_on_during_millibottleneck() {
        // Backend 0 freezes: it still accepts assignments but never
        // completes. Every selection must land on it.
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        for i in 0..40 {
            let now = t(i);
            let b = lb.select(now, &NOEX).unwrap();
            if b.0 == 0 {
                lb.endpoint_acquired(now, b); // frozen: no response
            } else {
                complete_one(&mut lb, now, b, 1_000);
            }
        }
        // After warmup the frozen backend's lb_value is pinned at the
        // minimum, so the pile-on is total.
        let picked: Vec<usize> = (40..60)
            .map(|i| {
                let b = lb.select(t(i), &NOEX).unwrap();
                lb.endpoint_acquired(t(i), b);
                b.0
            })
            .collect();
        assert!(picked.iter().all(|&p| p == 0), "picks were {picked:?}");
    }

    #[test]
    fn current_load_avoids_frozen_backend() {
        let mut lb = balancer(PolicyKind::CurrentLoad, MechanismKind::Original, 4);
        // Freeze backend 0 after it absorbs a few requests.
        for i in 0..12 {
            let now = t(i);
            let b = lb.select(now, &NOEX).unwrap();
            lb.endpoint_acquired(now, b);
            if b.0 != 0 {
                lb.response_received(now, b, 1_000, SimDuration::from_millis(2));
            }
        }
        // Backend 0's outstanding count exceeds everyone else's; no new
        // request should pick it.
        for i in 12..40 {
            let b = lb.select(t(i), &NOEX).unwrap();
            assert_ne!(b.0, 0, "current_load picked the frozen backend");
            lb.endpoint_acquired(t(i), b);
            lb.response_received(t(i), b, 1_000, SimDuration::from_millis(2));
        }
    }

    #[test]
    fn total_traffic_follows_bytes() {
        let mut lb = balancer(PolicyKind::TotalTraffic, MechanismKind::Original, 2);
        // Backend 0 serves one huge response; backend 1 small ones.
        complete_one(&mut lb, t(0), BackendId(0), 1_000_000);
        complete_one(&mut lb, t(1), BackendId(1), 100);
        // Selection prefers the low-traffic backend until it catches up.
        for i in 2..10 {
            assert_eq!(lb.select(t(i), &[false, false]), Some(BackendId(1)));
            complete_one(&mut lb, t(i), BackendId(1), 100);
        }
    }

    #[test]
    fn giveup_marks_busy_and_select_skips_it() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::SkipToBusy, 4);
        let b = lb.select(t(0), &NOEX).unwrap();
        assert_eq!(
            lb.endpoint_failed(t(0), b, SimDuration::ZERO),
            EndpointAdvice::GiveUp
        );
        assert_eq!(lb.state_of(t(1), b), WorkerState::Busy);
        // Reselect excludes it naturally (it is Busy).
        let b2 = lb.select(t(1), &NOEX).unwrap();
        assert_ne!(b2, b);
    }

    #[test]
    fn original_mechanism_advises_retries_first() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        let b = BackendId(0);
        assert!(matches!(
            lb.endpoint_failed(t(0), b, SimDuration::ZERO),
            EndpointAdvice::RetryAfter(_)
        ));
        // Backend stays Available during the polling loop — the mechanism
        // limitation.
        assert_eq!(lb.state_of(t(50), b), WorkerState::Available);
        assert_eq!(
            lb.endpoint_failed(t(300), b, SimDuration::from_millis(300)),
            EndpointAdvice::GiveUp
        );
        assert_eq!(lb.state_of(t(301), b), WorkerState::Busy);
        assert_eq!(lb.stats().retries_advised, 1);
        assert_eq!(lb.stats().giveups, 1);
    }

    #[test]
    fn busy_expires_and_backend_returns() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::SkipToBusy, 2);
        lb.endpoint_failed(t(0), BackendId(0), SimDuration::ZERO);
        assert_eq!(lb.state_of(t(50), BackendId(0)), WorkerState::Busy);
        assert_eq!(lb.state_of(t(150), BackendId(0)), WorkerState::Available);
    }

    #[test]
    fn response_clears_busy() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::SkipToBusy, 2);
        lb.endpoint_failed(t(0), BackendId(0), SimDuration::ZERO);
        lb.response_received(t(10), BackendId(0), 100, SimDuration::from_millis(2));
        assert_eq!(lb.state_of(t(11), BackendId(0)), WorkerState::Available);
    }

    #[test]
    fn all_busy_yields_none() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::SkipToBusy, 2);
        lb.endpoint_failed(t(0), BackendId(0), SimDuration::ZERO);
        lb.endpoint_failed(t(0), BackendId(1), SimDuration::ZERO);
        assert_eq!(lb.select(t(1), &[false, false]), None);
        assert_eq!(lb.stats().no_candidate, 1);
    }

    #[test]
    fn exclusion_mask_is_respected() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        let picked = lb.select(t(0), &[true, true, true, false]).unwrap();
        assert_eq!(picked, BackendId(3));
    }

    #[test]
    fn repeated_streaks_escalate_to_error_and_recover() {
        let mut cfg = BalancerConfig::with(PolicyKind::TotalRequest, MechanismKind::SkipToBusy);
        cfg.error_threshold = 2;
        cfg.error_recover = SimDuration::from_secs(1);
        let mut lb = Balancer::new(cfg, 2).unwrap();
        lb.endpoint_failed(t(0), BackendId(0), SimDuration::ZERO);
        lb.endpoint_failed(t(200), BackendId(0), SimDuration::ZERO);
        assert_eq!(lb.state_of(t(300), BackendId(0)), WorkerState::Error);
        assert_eq!(lb.state_of(t(1_300), BackendId(0)), WorkerState::Available);
    }

    #[test]
    fn abort_releases_current_load() {
        let mut lb = balancer(PolicyKind::CurrentLoad, MechanismKind::Original, 2);
        lb.endpoint_acquired(t(0), BackendId(0));
        assert_eq!(lb.lb_values(), &[1, 0]);
        lb.request_aborted(BackendId(0));
        assert_eq!(lb.lb_values(), &[0, 0]);
        assert_eq!(lb.stats().aborts, 1);
    }

    #[test]
    fn decay_halves_on_schedule() {
        let mut cfg = BalancerConfig::with(PolicyKind::TotalRequest, MechanismKind::Original);
        cfg.decay_interval = Some(SimDuration::from_secs(1));
        let mut lb = Balancer::new(cfg, 2).unwrap();
        for _ in 0..8 {
            complete_one(&mut lb, t(0), BackendId(0), 0);
        }
        assert_eq!(lb.lb_values()[0], 8);
        lb.select(SimTime::from_secs(1), &[false, false]);
        assert_eq!(lb.lb_values()[0], 4);
        lb.select(SimTime::from_secs(3), &[false, false]);
        assert_eq!(lb.lb_values()[0], 1);
    }

    #[test]
    fn detector_driven_vetoes_signalled_backends() {
        let mut lb = balancer(PolicyKind::DetectorDriven, MechanismKind::Original, 4);
        // Backend 0 is idle (minimum load) but flagged: never picked.
        lb.signal_stall(BackendId(0), true);
        for i in 0..20 {
            let b = lb.select(t(i), &NOEX).unwrap();
            assert_ne!(b.0, 0, "selected a backend inside a stall window");
            complete_one(&mut lb, t(i), b, 100);
        }
        assert!(lb.stats().stall_vetoes >= 20);
        // Flag clears: the idle backend is re-admitted and, as the
        // unique minimum-load candidate, immediately wins again.
        lb.signal_stall(BackendId(0), false);
        for i in 1..4 {
            lb.endpoint_acquired(t(21), BackendId(i));
        }
        assert_eq!(lb.select(t(22), &NOEX), Some(BackendId(0)));
    }

    #[test]
    fn detector_driven_falls_back_when_everything_is_flagged() {
        let mut lb = balancer(PolicyKind::DetectorDriven, MechanismKind::Original, 2);
        lb.signal_stall(BackendId(0), true);
        lb.signal_stall(BackendId(1), true);
        lb.endpoint_acquired(t(0), BackendId(0));
        // All flagged: signals are ignored, current_load ranks.
        assert_eq!(lb.select(t(1), &[false, false]), Some(BackendId(1)));
    }

    #[test]
    fn other_policies_ignore_stall_signals() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        lb.signal_stall(BackendId(0), true);
        assert_eq!(lb.select(t(0), &NOEX), Some(BackendId(0)));
        assert_eq!(lb.stats().stall_vetoes, 0);
    }

    #[test]
    fn stats_track_per_backend_counts() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        complete_one(&mut lb, t(0), BackendId(2), 10);
        complete_one(&mut lb, t(1), BackendId(2), 10);
        assert_eq!(lb.stats().assignments[2], 2);
        assert_eq!(lb.stats().completions[2], 2);
        assert_eq!(lb.stats().assignments[0], 0);
    }

    #[test]
    #[should_panic(expected = "exclude mask size mismatch")]
    fn wrong_exclude_size_panics() {
        let mut lb = balancer(PolicyKind::TotalRequest, MechanismKind::Original, 4);
        lb.select(t(0), &[false; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_panics() {
        let _ = Balancer::new(BalancerConfig::default(), 0);
    }
}
