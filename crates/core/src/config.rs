//! Balancer configuration.
//!
//! Defaults mirror mod_jk 1.2.32 as configured in the paper's testbed:
//! `cache_acquire_timeout = 300 ms`, `retry_sleep = 100 ms`
//! (`JK_SLEEP_DEF`), `lb_mult = 1`. The six rows of the paper's Table I
//! are the cross product exposed by [`BalancerConfig::table1_rows`].

use crate::mechanism::MechanismKind;
use crate::policy::PolicyKind;
use mlb_simkernel::time::SimDuration;

/// Full configuration of one load balancer instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancerConfig {
    /// The lb_value policy.
    pub policy: PolicyKind,
    /// The endpoint-acquisition mechanism.
    pub mechanism: MechanismKind,
    /// lb_value increment unit (mod_jk `lbfactor` normalization).
    pub lb_mult: u64,
    /// Original mechanism: total budget for polling one candidate.
    pub cache_acquire_timeout: SimDuration,
    /// Original mechanism: sleep between polls (`JK_SLEEP_DEF`).
    pub retry_sleep: SimDuration,
    /// How long a Busy mark keeps a candidate out of selection.
    pub busy_hold: SimDuration,
    /// Consecutive failed acquisitions that escalate Busy → Error.
    pub error_threshold: u32,
    /// How long an Error mark keeps a candidate out of selection.
    pub error_recover: SimDuration,
    /// Optional mod_jk-style aging: halve all lb_values at this period.
    pub decay_interval: Option<SimDuration>,
    /// `ProbeFirst` mechanism: how long to wait for a CPing reply before
    /// declaring the backend Busy.
    pub probe_timeout: SimDuration,
    /// Seed for the balancer's own random stream (the `Random` policy).
    pub seed: u64,
    /// Optional per-backend capacity weights (mod_jk `lbfactor`). A
    /// backend with twice the weight receives twice the share under the
    /// counting policies. `None` means equal weights.
    pub weights: Option<Vec<u64>>,
    /// mod_jk `sticky_session`: once a client's first request is served by
    /// a backend, all its later requests go to the same backend, bypassing
    /// the policy. Failover to a fresh selection only happens when the
    /// pinned backend cannot hand out an endpoint (GiveUp) or is in Error.
    pub sticky_sessions: bool,
    /// With sticky sessions: how many affinity violations (failovers away
    /// from the pinned backend) each client may accrue before its affinity
    /// is abandoned for good and it routes by policy like everyone else.
    /// `u32::MAX` (the default) never abandons — plain mod_jk behavior.
    pub sticky_violation_budget: u32,
}

impl BalancerConfig {
    /// mod_jk defaults with the paper's default policy (`total_request`)
    /// and the original mechanism.
    pub fn mod_jk_default() -> Self {
        BalancerConfig {
            policy: PolicyKind::TotalRequest,
            mechanism: MechanismKind::Original,
            lb_mult: 1,
            cache_acquire_timeout: SimDuration::from_millis(300),
            retry_sleep: SimDuration::from_millis(100),
            busy_hold: SimDuration::from_millis(100),
            error_threshold: 10,
            error_recover: SimDuration::from_secs(60),
            decay_interval: None,
            probe_timeout: SimDuration::from_millis(10),
            seed: 0x6A6B, // "jk"
            weights: None,
            sticky_sessions: false,
            sticky_violation_budget: u32::MAX,
        }
    }

    /// Same defaults with a chosen policy/mechanism pair.
    pub fn with(policy: PolicyKind, mechanism: MechanismKind) -> Self {
        BalancerConfig {
            policy,
            mechanism,
            ..BalancerConfig::mod_jk_default()
        }
    }

    /// A short label like `"total_request + modified get_endpoint"`.
    pub fn label(&self) -> String {
        let base = self.base_label();
        if self.sticky_sessions {
            format!("{base} (sticky)")
        } else {
            base
        }
    }

    fn base_label(&self) -> String {
        match self.mechanism {
            MechanismKind::Original => format!("Original {}", self.policy.name()),
            MechanismKind::SkipToBusy => {
                format!("{} with modified get_endpoint", self.policy.name())
            }
            MechanismKind::ProbeFirst => {
                format!("{} with cping/cpong probe", self.policy.name())
            }
        }
    }

    /// The six policy/mechanism combinations of the paper's Table I, in
    /// row order.
    pub fn table1_rows() -> Vec<BalancerConfig> {
        vec![
            BalancerConfig::with(PolicyKind::TotalRequest, MechanismKind::Original),
            BalancerConfig::with(PolicyKind::TotalTraffic, MechanismKind::Original),
            BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::Original),
            BalancerConfig::with(PolicyKind::TotalRequest, MechanismKind::SkipToBusy),
            BalancerConfig::with(PolicyKind::TotalTraffic, MechanismKind::SkipToBusy),
            BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::SkipToBusy),
        ]
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.lb_mult == 0 {
            return Err("lb_mult must be positive".into());
        }
        if self.retry_sleep.is_zero() {
            return Err("retry_sleep must be positive".into());
        }
        if self.cache_acquire_timeout < self.retry_sleep {
            return Err(format!(
                "cache_acquire_timeout ({}) < retry_sleep ({})",
                self.cache_acquire_timeout, self.retry_sleep
            ));
        }
        if self.error_threshold == 0 {
            return Err("error_threshold must be at least 1".into());
        }
        if let Some(d) = self.decay_interval {
            if d.is_zero() {
                return Err("decay_interval must be positive when set".into());
            }
        }
        if self.mechanism == MechanismKind::ProbeFirst && self.probe_timeout.is_zero() {
            return Err("probe_timeout must be positive for the ProbeFirst mechanism".into());
        }
        if let Some(w) = &self.weights {
            if w.is_empty() || w.contains(&0) {
                return Err("weights must be non-empty and positive".into());
            }
        }
        Ok(())
    }
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig::mod_jk_default()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // intentional: mutate one knob at a time
mod tests {
    use super::*;

    #[test]
    fn defaults_match_mod_jk() {
        let c = BalancerConfig::default();
        assert_eq!(c.cache_acquire_timeout, SimDuration::from_millis(300));
        assert_eq!(c.retry_sleep, SimDuration::from_millis(100));
        assert_eq!(c.policy, PolicyKind::TotalRequest);
        assert_eq!(c.mechanism, MechanismKind::Original);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn table1_has_six_unique_rows() {
        let rows = BalancerConfig::table1_rows();
        assert_eq!(rows.len(), 6);
        let mut labels: Vec<String> = rows.iter().map(BalancerConfig::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn labels_read_like_the_paper() {
        let c = BalancerConfig::with(PolicyKind::TotalRequest, MechanismKind::Original);
        assert_eq!(c.label(), "Original total_request");
        let c = BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::SkipToBusy);
        assert_eq!(c.label(), "current_load with modified get_endpoint");
    }

    #[test]
    fn probe_label_and_validation() {
        let mut c = BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::ProbeFirst);
        assert_eq!(c.label(), "current_load with cping/cpong probe");
        assert!(c.validate().is_ok());
        c.probe_timeout = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = BalancerConfig::default();
        c.lb_mult = 0;
        assert!(c.validate().is_err());

        let mut c = BalancerConfig::default();
        c.retry_sleep = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = BalancerConfig::default();
        c.cache_acquire_timeout = SimDuration::from_millis(50);
        assert!(c.validate().is_err());

        let mut c = BalancerConfig::default();
        c.error_threshold = 0;
        assert!(c.validate().is_err());

        let mut c = BalancerConfig::default();
        c.decay_interval = Some(SimDuration::ZERO);
        assert!(c.validate().is_err());
    }
}
