//! Property tests for the load balancer's invariants.

use mlb_core::prelude::*;
use mlb_core::types::BackendId;
use mlb_simkernel::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// An arbitrary paper policy.
fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::TotalRequest),
        Just(PolicyKind::TotalTraffic),
        Just(PolicyKind::CurrentLoad),
    ]
}

/// Any of the seven policies (paper + extensions).
fn any_policy_strategy() -> impl Strategy<Value = PolicyKind> {
    proptest::sample::select(PolicyKind::all_extended().to_vec())
}

/// An arbitrary mechanism.
fn mechanism_strategy() -> impl Strategy<Value = MechanismKind> {
    prop_oneof![
        Just(MechanismKind::Original),
        Just(MechanismKind::SkipToBusy),
        Just(MechanismKind::ProbeFirst),
    ]
}

/// A random interaction script against one balancer: each step assigns to
/// or completes on a backend, or reports a failed acquisition.
#[derive(Debug, Clone)]
enum Step {
    AssignComplete { backend: usize, bytes: u16 },
    AssignOnly { backend: usize },
    Fail { backend: usize },
    CompleteLate { bytes: u16 },
}

fn step_strategy(backends: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..backends, any::<u16>())
            .prop_map(|(backend, bytes)| Step::AssignComplete { backend, bytes }),
        (0..backends).prop_map(|backend| Step::AssignOnly { backend }),
        (0..backends).prop_map(|backend| Step::Fail { backend }),
        any::<u16>().prop_map(|bytes| Step::CompleteLate { bytes }),
    ]
}

proptest! {
    /// select_min always returns an eligible backend with the minimum
    /// lb_value among eligible backends.
    #[test]
    fn select_min_is_correct(
        policy in policy_strategy(),
        values in proptest::collection::vec(0u64..100, 2..8),
        eligible in proptest::collection::vec(any::<bool>(), 2..8),
        cursor in 0usize..16,
    ) {
        let n = values.len().min(eligible.len());
        let values = &values[..n];
        let eligible = &eligible[..n];
        let mut lb = LbValues::new(policy, n, 1);
        // Load the values through the public completion hook.
        for (i, &v) in values.iter().enumerate() {
            for _ in 0..v {
                lb.on_assign(BackendId(i), 1);
            }
            if policy != PolicyKind::CurrentLoad {
                for _ in 0..v {
                    lb.on_complete(BackendId(i), 1, SimDuration::ZERO);
                }
            }
        }
        match lb.select_min(eligible, cursor) {
            Some(b) => {
                prop_assert!(eligible[b.index()], "selected ineligible backend");
                let min = lb.values().iter().zip(eligible)
                    .filter(|&(_, &e)| e)
                    .map(|(&v, _)| v)
                    .min()
                    .unwrap();
                prop_assert_eq!(lb.value(b), min, "did not pick the minimum");
            }
            None => prop_assert!(eligible.iter().all(|&e| !e)),
        }
    }

    /// current_load's lb_value always equals assignments minus
    /// completions/aborts (never underflowing), i.e. outstanding requests.
    #[test]
    fn current_load_counts_outstanding(
        script in proptest::collection::vec(step_strategy(4), 0..200)
    ) {
        let cfg = BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::Original);
        let mut lb = Balancer::new(cfg, 4).unwrap();
        let mut outstanding = [0i64; 4];
        let now = SimTime::ZERO;
        let mut pending: Vec<usize> = Vec::new();
        for step in script {
            match step {
                Step::AssignComplete { backend, bytes } => {
                    lb.endpoint_acquired(now, BackendId(backend));
                    lb.response_received(now, BackendId(backend), u64::from(bytes), SimDuration::from_millis(1));
                }
                Step::AssignOnly { backend } => {
                    lb.endpoint_acquired(now, BackendId(backend));
                    outstanding[backend] += 1;
                    pending.push(backend);
                }
                Step::Fail { backend } => {
                    let _ = lb.endpoint_failed(now, BackendId(backend), SimDuration::ZERO);
                }
                Step::CompleteLate { bytes } => {
                    if let Some(backend) = pending.pop() {
                        lb.response_received(now, BackendId(backend), u64::from(bytes), SimDuration::from_millis(1));
                        outstanding[backend] -= 1;
                    }
                }
            }
        }
        for (i, &o) in outstanding.iter().enumerate() {
            prop_assert_eq!(lb.lb_values()[i] as i64, o.max(0), "backend {}", i);
        }
    }

    /// Cumulative policies never decrease (monotone counters).
    #[test]
    fn cumulative_policies_are_monotone(
        policy in prop_oneof![Just(PolicyKind::TotalRequest), Just(PolicyKind::TotalTraffic)],
        script in proptest::collection::vec(step_strategy(3), 0..150)
    ) {
        let cfg = BalancerConfig::with(policy, MechanismKind::Original);
        let mut lb = Balancer::new(cfg, 3).unwrap();
        let mut prev = lb.lb_values().to_vec();
        let now = SimTime::ZERO;
        for step in script {
            match step {
                Step::AssignComplete { backend, bytes } => {
                    lb.endpoint_acquired(now, BackendId(backend));
                    lb.response_received(now, BackendId(backend), u64::from(bytes), SimDuration::from_millis(1));
                }
                Step::AssignOnly { backend } => lb.endpoint_acquired(now, BackendId(backend)),
                Step::Fail { backend } => {
                    let _ = lb.endpoint_failed(now, BackendId(backend), SimDuration::ZERO);
                }
                Step::CompleteLate { bytes } => {
                    lb.response_received(now, BackendId(0), u64::from(bytes), SimDuration::from_millis(1));
                }
            }
            let cur = lb.lb_values().to_vec();
            for (p, c) in prev.iter().zip(&cur) {
                prop_assert!(c >= p, "cumulative lb_value decreased");
            }
            prev = cur;
        }
    }

    /// Whatever the script, select() never returns a Busy/Error backend.
    #[test]
    fn select_never_returns_unavailable(
        policy in any_policy_strategy(),
        mechanism in mechanism_strategy(),
        fails in proptest::collection::vec(0usize..4, 0..20),
        at_ms in 0u64..1_000,
    ) {
        let cfg = BalancerConfig::with(policy, mechanism);
        let mut lb = Balancer::new(cfg, 4).unwrap();
        for (i, &b) in fails.iter().enumerate() {
            // Elapsed beyond the timeout forces GiveUp (Busy mark) under
            // both mechanisms.
            let _ = lb.endpoint_failed(
                SimTime::from_millis(i as u64),
                BackendId(b),
                SimDuration::from_secs(1),
            );
        }
        let now = SimTime::from_millis(at_ms);
        if let Some(b) = lb.select(now, &[false; 4]) {
            prop_assert_eq!(lb.state_of(now, b), WorkerState::Available);
        }
    }

    /// For every policy, the outstanding counter equals
    /// assigns − completes − aborts, clamped at zero.
    #[test]
    fn outstanding_is_maintained_for_all_policies(
        policy in any_policy_strategy(),
        script in proptest::collection::vec(step_strategy(3), 0..150),
    ) {
        let mut lb = LbValues::new(policy, 3, 1);
        let mut expected = [0i64; 3];
        let mut pending: Vec<usize> = Vec::new();
        for step in script {
            match step {
                Step::AssignComplete { backend, bytes } => {
                    lb.on_assign(BackendId(backend), u64::from(bytes));
                    lb.on_complete(BackendId(backend), u64::from(bytes), SimDuration::from_millis(1));
                }
                Step::AssignOnly { backend } => {
                    lb.on_assign(BackendId(backend), 0);
                    expected[backend] += 1;
                    pending.push(backend);
                }
                Step::Fail { backend } => {
                    if let Some(i) = pending.pop() {
                        let _ = backend;
                        lb.on_abort(BackendId(i));
                        expected[i] -= 1;
                    }
                }
                Step::CompleteLate { bytes } => {
                    if let Some(i) = pending.pop() {
                        lb.on_complete(BackendId(i), u64::from(bytes), SimDuration::from_millis(1));
                        expected[i] -= 1;
                    }
                }
            }
            for (i, &exp) in expected.iter().enumerate() {
                prop_assert_eq!(
                    lb.outstanding(BackendId(i)) as i64,
                    exp.max(0),
                    "policy {} backend {}",
                    policy.name(),
                    i
                );
            }
        }
    }

    /// C3's rank is monotone in the outstanding count for a fixed EWMA.
    #[test]
    fn c3_rank_is_monotone_in_outstanding(
        latency_ms in 1u64..1_000,
        assigns in 1usize..50,
    ) {
        let mut lb = LbValues::new(PolicyKind::C3, 1, 1);
        lb.on_assign(BackendId(0), 0);
        lb.on_complete(BackendId(0), 0, SimDuration::from_millis(latency_ms));
        let mut prev = lb.value(BackendId(0));
        for _ in 0..assigns {
            lb.on_assign(BackendId(0), 0);
            let cur = lb.value(BackendId(0));
            prop_assert!(cur >= prev, "rank decreased as load grew");
            prev = cur;
        }
    }

    /// Whatever the stall-signal pattern, detector_driven never selects a
    /// backend inside a flagged window while an unflagged eligible
    /// candidate exists (and falls back to ignoring the signals only when
    /// everything eligible is flagged).
    #[test]
    fn detector_driven_never_selects_flagged(
        backends in 2usize..8,
        flagged in proptest::collection::vec(any::<bool>(), 8..9),
        excluded in proptest::collection::vec(any::<bool>(), 8..9),
        loads in proptest::collection::vec(0u64..20, 8..9),
    ) {
        let cfg = BalancerConfig::with(PolicyKind::DetectorDriven, MechanismKind::Original);
        let mut lb = Balancer::new(cfg, backends).unwrap();
        let now = SimTime::ZERO;
        for i in 0..backends {
            for _ in 0..loads[i] {
                lb.endpoint_acquired(now, BackendId(i));
            }
            lb.signal_stall(BackendId(i), flagged[i]);
        }
        let exclude = &excluded[..backends];
        let healthy_exists = (0..backends).any(|i| !exclude[i] && !flagged[i]);
        if let Some(b) = lb.select(now, exclude) {
            prop_assert!(!exclude[b.index()], "selected an excluded backend");
            if healthy_exists {
                prop_assert!(
                    !flagged[b.index()],
                    "selected flagged backend {} with healthy candidates available",
                    b.index()
                );
            }
        } else {
            // None only when every backend is excluded (flags alone never
            // wipe out the candidate set: the veto falls back).
            prop_assert!(exclude[..backends].iter().all(|&e| e));
        }
    }

    /// With zero stall flags, detector_driven is selection-identical to
    /// current_load on any load pattern and exclusion mask.
    #[test]
    fn detector_driven_without_flags_is_current_load(
        backends in 2usize..8,
        loads in proptest::collection::vec(0u64..20, 8..9),
        excluded in proptest::collection::vec(any::<bool>(), 8..9),
        rounds in 1usize..30,
    ) {
        let mut dd = Balancer::new(
            BalancerConfig::with(PolicyKind::DetectorDriven, MechanismKind::Original),
            backends,
        ).unwrap();
        let mut cl = Balancer::new(
            BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::Original),
            backends,
        ).unwrap();
        let now = SimTime::ZERO;
        for (i, &load) in loads.iter().enumerate().take(backends) {
            for _ in 0..load {
                dd.endpoint_acquired(now, BackendId(i));
                cl.endpoint_acquired(now, BackendId(i));
            }
        }
        let exclude = &excluded[..backends];
        for _ in 0..rounds {
            let a = dd.select(now, exclude);
            let b = cl.select(now, exclude);
            prop_assert_eq!(a, b, "selection diverged without flags");
            if let Some(pick) = a {
                dd.endpoint_acquired(now, pick);
                cl.endpoint_acquired(now, pick);
            }
        }
    }

    /// Selection with all-zero values and no exclusions is perfectly fair
    /// over any number of rounds (round-robin tie-break).
    #[test]
    fn tie_breaking_is_fair(rounds in 1usize..50, backends in 2usize..8) {
        let cfg = BalancerConfig::with(PolicyKind::CurrentLoad, MechanismKind::Original);
        let mut lb = Balancer::new(cfg, backends).unwrap();
        let mut counts = vec![0u64; backends];
        let noex = vec![false; backends];
        for _ in 0..rounds * backends {
            let b = lb.select(SimTime::ZERO, &noex).unwrap();
            counts[b.index()] += 1;
            lb.endpoint_acquired(SimTime::ZERO, b);
            lb.response_received(SimTime::ZERO, b, 1, SimDuration::from_millis(1));
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unfair tie-breaking: {:?}", counts);
    }
}
