//! Fixed-window time series.
//!
//! The paper's figures are all built from 50 ms-granularity series: VLRT
//! counts per window (Fig. 2a/6a/7a), queue lengths (Fig. 2b/8/10a/12),
//! fine-grained CPU utilization (Fig. 2c/6b), dirty-page size (Fig. 2e),
//! per-backend workload distribution (Fig. 6c/9b/13b) and lb_values
//! (Fig. 10b/11b). Two container types cover them:
//!
//! * [`WindowedCounter`] — integer event counts per window;
//! * [`WindowedSeries`] — float samples per window with sum/count/max/min.

use mlb_simkernel::time::{SimDuration, SimTime};

/// Integer event counts bucketed by fixed time windows.
///
/// # Examples
///
/// ```
/// use mlb_metrics::series::WindowedCounter;
/// use mlb_simkernel::time::{SimDuration, SimTime};
///
/// let mut c = WindowedCounter::new(SimDuration::from_millis(50));
/// c.incr(SimTime::from_millis(10));   // window 0
/// c.incr(SimTime::from_millis(49));   // window 0
/// c.incr(SimTime::from_millis(50));   // window 1
/// assert_eq!(c.counts(), &[2, 1]);
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    window: SimDuration,
    counts: Vec<u64>,
    total: u64,
}

impl WindowedCounter {
    /// Creates a counter with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window width must be positive");
        WindowedCounter {
            window,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// The paper's 50 ms window.
    pub fn paper_window() -> Self {
        WindowedCounter::new(SimDuration::from_millis(50))
    }

    /// Window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Adds one event at `t`.
    pub fn incr(&mut self, t: SimTime) {
        self.add(t, 1);
    }

    /// Adds `n` events at `t`.
    pub fn add(&mut self, t: SimTime, n: u64) {
        let idx = self.index_of(t);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
    }

    /// Window index containing `t`.
    pub fn index_of(&self, t: SimTime) -> usize {
        (t.as_micros() / self.window.as_micros()) as usize
    }

    /// Start time of window `idx`.
    pub fn window_start(&self, idx: usize) -> SimTime {
        SimTime::from_micros(idx as u64 * self.window.as_micros())
    }

    /// Counts per window, from window 0 to the last touched window.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count in the window containing `t` (0 if untouched).
    pub fn count_at(&self, t: SimTime) -> u64 {
        self.counts.get(self.index_of(t)).copied().unwrap_or(0)
    }

    /// Total events across all windows.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest single-window count.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Counts as `f64` (handy for charting).
    pub fn to_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

/// Per-window aggregate of one float bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAggregate {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
}

impl WindowAggregate {
    const EMPTY: WindowAggregate = WindowAggregate {
        count: 0,
        sum: 0.0,
        max: f64::NEG_INFINITY,
        min: f64::INFINITY,
    };

    /// Mean of the samples in this window, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Float samples bucketed by fixed time windows, keeping sum/count/max/min
/// per window.
///
/// # Examples
///
/// ```
/// use mlb_metrics::series::WindowedSeries;
/// use mlb_simkernel::time::{SimDuration, SimTime};
///
/// let mut s = WindowedSeries::new(SimDuration::from_millis(50));
/// s.record(SimTime::from_millis(10), 3.0);
/// s.record(SimTime::from_millis(20), 5.0);
/// let w = s.window_at(SimTime::from_millis(40)).unwrap();
/// assert_eq!(w.count, 2);
/// assert_eq!(w.mean(), Some(4.0));
/// assert_eq!(w.max, 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    window: SimDuration,
    buckets: Vec<WindowAggregate>,
}

impl WindowedSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window width must be positive");
        WindowedSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// The paper's 50 ms window.
    pub fn paper_window() -> Self {
        WindowedSeries::new(SimDuration::from_millis(50))
    }

    /// Window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records a sample at `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, WindowAggregate::EMPTY);
        }
        let b = &mut self.buckets[idx];
        b.count += 1;
        // simlint::allow(no-float-accum): deterministic arrival-order fold within one window; digests hash derived counters, not this field
        b.sum += value;
        b.max = b.max.max(value);
        b.min = b.min.min(value);
    }

    /// Aggregate of the window containing `t` (if any sample landed there).
    pub fn window_at(&self, t: SimTime) -> Option<&WindowAggregate> {
        let idx = (t.as_micros() / self.window.as_micros()) as usize;
        self.buckets.get(idx).filter(|b| b.count > 0)
    }

    /// All window aggregates from window 0 to the last touched one.
    pub fn windows(&self) -> &[WindowAggregate] {
        &self.buckets
    }

    /// Per-window means; empty windows yield `fill`.
    pub fn means(&self, fill: f64) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|b| b.mean().unwrap_or(fill))
            .collect()
    }

    /// Per-window maxima; empty windows yield `fill`.
    pub fn maxima(&self, fill: f64) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|b| if b.count > 0 { b.max } else { fill })
            .collect()
    }

    /// Total samples recorded.
    pub fn sample_count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Global maximum across every window, if any sample exists.
    pub fn global_max(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| b.max)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn counter_buckets_by_window() {
        let mut c = WindowedCounter::new(SimDuration::from_millis(100));
        c.incr(t(0));
        c.incr(t(99));
        c.incr(t(100));
        c.incr(t(250));
        assert_eq!(c.counts(), &[2, 1, 1]);
    }

    #[test]
    fn counter_add_n() {
        let mut c = WindowedCounter::paper_window();
        c.add(t(10), 5);
        assert_eq!(c.count_at(t(49)), 5);
        assert_eq!(c.count_at(t(51)), 0);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn counter_peak_and_total() {
        let mut c = WindowedCounter::new(SimDuration::from_millis(10));
        c.add(t(0), 3);
        c.add(t(15), 7);
        c.add(t(25), 2);
        assert_eq!(c.peak(), 7);
        assert_eq!(c.total(), 12);
        assert_eq!(c.to_f64(), vec![3.0, 7.0, 2.0]);
    }

    #[test]
    fn counter_window_start_roundtrip() {
        let c = WindowedCounter::new(SimDuration::from_millis(50));
        let idx = c.index_of(t(125));
        assert_eq!(idx, 2);
        assert_eq!(c.window_start(idx), t(100));
    }

    #[test]
    fn series_aggregates() {
        let mut s = WindowedSeries::new(SimDuration::from_millis(10));
        s.record(t(1), 2.0);
        s.record(t(2), 4.0);
        s.record(t(3), -1.0);
        let w = s.window_at(t(5)).unwrap();
        assert_eq!(w.count, 3);
        assert_eq!(w.sum, 5.0);
        assert_eq!(w.max, 4.0);
        assert_eq!(w.min, -1.0);
        assert!((w.mean().unwrap() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn series_empty_windows_filled() {
        let mut s = WindowedSeries::new(SimDuration::from_millis(10));
        s.record(t(0), 1.0);
        s.record(t(25), 3.0);
        assert_eq!(s.means(0.0), vec![1.0, 0.0, 3.0]);
        assert_eq!(s.maxima(-1.0), vec![1.0, -1.0, 3.0]);
    }

    #[test]
    fn series_global_max() {
        let mut s = WindowedSeries::paper_window();
        assert_eq!(s.global_max(), None);
        s.record(t(1), 1.5);
        s.record(t(500), 9.5);
        assert_eq!(s.global_max(), Some(9.5));
        assert_eq!(s.sample_count(), 2);
    }

    #[test]
    fn window_at_empty_is_none() {
        let s = WindowedSeries::paper_window();
        assert!(s.window_at(t(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_window_counter_panics() {
        WindowedCounter::new(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_window_series_panics() {
        WindowedSeries::new(SimDuration::ZERO);
    }
}
