//! Per-window × per-segment VLRT attribution heatmap.
//!
//! The post-hoc trace log already attributes each very-long-response-time
//! request to the latency segment that dominated it; this module folds
//! those attributions onto the time axis. Each retained VLRT chain is
//! keyed by the window its response completed in, and its six segment
//! latencies are summed per window with integer-µs arithmetic. The
//! result renders two ways: an ASCII density grid for the harness
//! output, and a `fig_attribution_heatmap.csv` table for re-plotting —
//! the reproduction's analogue of the paper's fine-grained timeline
//! figures, showing *when* each cause (retransmit clusters, admission
//! queuing, backend stalls) dominated.

use std::collections::BTreeMap;

use mlb_simkernel::time::SimDuration;

use crate::csv::CsvTable;
use crate::spans::{Segment, TraceLog};

/// Density ramp for the ASCII rendering, lightest to darkest.
const RAMP: [char; 6] = [' ', '.', ':', '*', '#', '@'];

/// Integer-µs segment sums per completion window.
#[derive(Debug, Clone)]
pub struct AttributionHeatmap {
    window: SimDuration,
    /// Window ordinal → per-segment µs sums (Segment::ALL order).
    rows: BTreeMap<u64, [u64; 6]>,
    /// VLRT chains folded in (those retained by the trace log).
    chains: u64,
}

impl AttributionHeatmap {
    /// An empty heatmap with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window.as_micros() > 0, "heatmap window must be positive");
        AttributionHeatmap {
            window,
            rows: BTreeMap::new(),
            chains: 0,
        }
    }

    /// Folds every retained VLRT cause of `log` into a heatmap, keyed by
    /// the window each request completed in.
    ///
    /// The trace log retains at most its configured VLRT capacity, so
    /// on very long runs the heatmap covers the retained subset (the
    /// log's `vlrt_total` says how many occurred overall).
    pub fn from_trace_log(log: &TraceLog, window: SimDuration) -> Self {
        let mut hm = AttributionHeatmap::new(window);
        for cause in log.vlrt_causes() {
            let Some(done) = cause.trace.last_at() else {
                continue;
            };
            hm.add(done.as_micros(), &cause.segments_us);
        }
        hm
    }

    /// Adds one request's segment latencies at completion time
    /// `done_us`.
    pub fn add(&mut self, done_us: u64, segments_us: &[u64; 6]) {
        let w = done_us / self.window.as_micros();
        let row = self.rows.entry(w).or_insert([0; 6]);
        for (acc, s) in row.iter_mut().zip(segments_us) {
            *acc = acc.saturating_add(*s);
        }
        self.chains += 1;
    }

    /// Number of VLRT chains folded in.
    pub fn chains(&self) -> u64 {
        self.chains
    }

    /// Non-empty rows in window order.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &[u64; 6])> {
        self.rows.iter().map(|(w, r)| (*w, r))
    }

    /// The CSV table behind `fig_attribution_heatmap.csv`: one row per
    /// window from the first to the last non-empty one (contiguous, so
    /// external plotters get a complete time axis), six µs columns in
    /// [`Segment::ALL`] order.
    pub fn to_csv(&self) -> CsvTable {
        let mut cols = vec!["window".to_owned(), "start_s".to_owned()];
        cols.extend(Segment::ALL.iter().map(|s| format!("{}_us", s.label())));
        let mut table = CsvTable::new(cols);
        let (Some(first), Some(last)) = (
            self.rows.keys().next().copied(),
            self.rows.keys().next_back().copied(),
        ) else {
            return table;
        };
        let width_s = self.window.as_secs_f64();
        for w in first..=last {
            let row = self.rows.get(&w).copied().unwrap_or([0; 6]);
            let mut cells = vec![w as f64, w as f64 * width_s];
            cells.extend(row.iter().map(|v| *v as f64));
            table.push_row(cells);
        }
        table
    }

    /// ASCII density grid: one row per window band (adjacent windows are
    /// merged so at most `max_rows` bands print), one column per
    /// segment, cell darkness proportional to the band's share of the
    /// heatmap's peak cell.
    pub fn render_ascii(&self, max_rows: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "VLRT attribution heatmap ({} chains, {} ms windows)",
            self.chains,
            self.window.as_micros() / 1_000
        );
        if self.rows.is_empty() {
            out.push_str("  (no VLRT requests)\n");
            return out;
        }
        let first = *self.rows.keys().next().unwrap_or(&0);
        let last = *self.rows.keys().next_back().unwrap_or(&0);
        let span = last - first + 1;
        let per_band = span.div_ceil(max_rows.max(1) as u64);

        // Merge windows into bands.
        let mut bands: BTreeMap<u64, [u64; 6]> = BTreeMap::new();
        for (w, row) in &self.rows {
            let band = (w - first) / per_band;
            let acc = bands.entry(band).or_insert([0; 6]);
            for (a, v) in acc.iter_mut().zip(row) {
                *a = a.saturating_add(*v);
            }
        }
        let peak = bands
            .values()
            .flat_map(|r| r.iter())
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);

        let _ = writeln!(
            out,
            "  {:>10}  {}  total_ms",
            "t(s)",
            Segment::ALL
                .iter()
                .map(|s| format!("{:>4}", &s.label()[..3.min(s.label().len())]))
                .collect::<Vec<_>>()
                .join("")
        );
        let width_us = self.window.as_micros();
        for (band, row) in &bands {
            let t0 = (first + band * per_band) * width_us;
            let mut cells = String::new();
            for v in row {
                // Linear ramp against the peak cell; any nonzero value
                // gets at least the lightest visible mark.
                let idx = if *v == 0 {
                    0
                } else {
                    let scaled = (*v * (RAMP.len() as u64 - 1)).div_ceil(peak);
                    scaled.clamp(1, RAMP.len() as u64 - 1) as usize
                };
                let _ = write!(cells, "   {}", RAMP[idx]);
            }
            let total: u64 = row.iter().sum();
            let _ = writeln!(
                out,
                "  {:>9.2}s {}  {:>8}",
                t0 as f64 / 1e6,
                cells,
                total / 1_000
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{RequestTrace, SpanKind, StallKind};
    use mlb_simkernel::time::SimTime;

    fn window() -> SimDuration {
        SimDuration::from_millis(50)
    }

    #[test]
    fn add_folds_into_completion_windows() {
        let mut hm = AttributionHeatmap::new(window());
        hm.add(10_000, &[1, 2, 3, 4, 5, 6]);
        hm.add(49_999, &[10, 0, 0, 0, 0, 0]);
        hm.add(50_000, &[0, 0, 0, 0, 0, 7]);
        assert_eq!(hm.chains(), 3);
        let rows: Vec<(u64, [u64; 6])> = hm.rows().map(|(w, r)| (w, *r)).collect();
        assert_eq!(
            rows,
            vec![(0, [11, 2, 3, 4, 5, 6]), (1, [0, 0, 0, 0, 0, 7])]
        );
    }

    #[test]
    fn csv_is_contiguous_and_labeled() {
        let mut hm = AttributionHeatmap::new(window());
        hm.add(0, &[1, 0, 0, 0, 0, 0]);
        hm.add(150_000, &[0, 0, 0, 0, 0, 2]);
        let table = hm.to_csv();
        assert_eq!(table.headers()[0], "window");
        assert_eq!(
            table.headers()[2],
            format!("{}_us", Segment::ALL[0].label())
        );
        // Windows 0..=3 inclusive, even though 1 and 2 are empty.
        assert_eq!(table.row_count(), 4);
    }

    #[test]
    fn ascii_marks_nonzero_cells() {
        let mut hm = AttributionHeatmap::new(window());
        hm.add(0, &[1_000_000, 0, 0, 0, 0, 0]);
        let text = hm.render_ascii(40);
        assert!(text.contains('@'), "{text}");
        assert!(text.contains("1 chains"), "{text}");
    }

    #[test]
    fn from_trace_log_uses_vlrt_chains() {
        let mut log = TraceLog::new(16, 16);
        log.record_stall(
            "tomcat1".to_owned(),
            StallKind::Flush,
            SimTime::from_millis(0),
            SimTime::from_millis(200),
        );
        let mut tr = RequestTrace::new(1);
        let at = SimTime::from_millis;
        tr.push(
            at(0),
            SpanKind::Issued {
                client: 0,
                apache: 0,
            },
        );
        tr.push(at(1), SpanKind::Arrived { attempt: 1 });
        tr.push(at(2), SpanKind::Admitted);
        tr.push(at(3), SpanKind::RoutingStarted);
        tr.push(
            at(4),
            SpanKind::EndpointAcquired {
                backend: 0,
                lb_value: 1,
            },
        );
        tr.push(at(1_490), SpanKind::RepliedFrontend);
        tr.push(
            at(1_500),
            SpanKind::Completed {
                rt: SimDuration::from_millis(1_500),
            },
        );
        log.record(tr, SimDuration::from_secs(1));
        let hm = AttributionHeatmap::from_trace_log(&log, window());
        assert_eq!(hm.chains(), 1);
        // Completed at 1.5 s → window 30.
        assert_eq!(hm.rows().next().map(|(w, _)| w), Some(30));
    }
}
