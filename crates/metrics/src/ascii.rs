//! Terminal rendering of experiment figures.
//!
//! The `repro` harness prints each paper figure as an ASCII chart so the
//! qualitative shape (queue spikes, VLRT clusters, workload-distribution
//! phases) is visible without leaving the terminal. CSV files carry the
//! exact numbers; these charts carry the story.

/// Renders one or more y-series over a shared x-axis as an ASCII line
/// chart.
///
/// Each series gets a distinct glyph (`*`, `o`, `+`, `x`, …). The y-axis
/// is auto-scaled to the data; the x-axis is labelled with the first and
/// last x values.
///
/// # Examples
///
/// ```
/// use mlb_metrics::ascii::line_chart;
///
/// let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x / 6.0).sin() + 1.0).collect();
/// let chart = line_chart("sine", &xs, &[("wave", &ys)], 60, 10);
/// assert!(chart.contains("sine"));
/// assert!(chart.contains('*'));
/// ```
///
/// # Panics
///
/// Panics if `xs` is empty, any series length differs from `xs`, or
/// `width`/`height` are too small to draw into.
pub fn line_chart(
    title: &str,
    xs: &[f64],
    series: &[(&str, &[f64])],
    width: usize,
    height: usize,
) -> String {
    assert!(!xs.is_empty(), "cannot chart an empty x-axis");
    assert!(width >= 16 && height >= 4, "chart area too small");
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} length mismatch");
    }

    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys.iter().filter(|y| y.is_finite()) {
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !y_min.is_finite() {
        y_min = 0.0;
        y_max = 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    // Anchor at zero when the data is non-negative, like the paper's plots.
    if y_min > 0.0 && y_min / y_max < 0.5 {
        y_min = 0.0;
    }

    let x_min = xs[0];
    let x_max = xs[xs.len() - 1];
    let x_span = if (x_max - x_min).abs() < f64::EPSILON {
        1.0
    } else {
        x_max - x_min
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            if !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row_f = (y - y_min) / (y_max - y_min) * (height - 1) as f64;
            let row = height - 1 - row_f.round().min((height - 1) as f64) as usize;
            grid[row][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    if !legend.is_empty() {
        out.push_str(&format!("  [{}]\n", legend.join("  ")));
    }
    let y_label_w = 10;
    for (ri, row) in grid.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * ri as f64 / (height - 1) as f64;
        out.push_str(&format!("{:>y_label_w$.2} |", y_val));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>y_label_w$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>y_label_w$}  {:<w2$}{:>w2$}\n",
        "",
        format_x(x_min),
        format_x(x_max),
        w2 = width / 2
    ));
    out
}

/// Renders a histogram as a horizontal bar chart with one row per bucket.
///
/// # Examples
///
/// ```
/// use mlb_metrics::ascii::bar_chart;
///
/// let out = bar_chart("rt", &[("<10ms".into(), 90.0), (">1s".into(), 10.0)], 40);
/// assert!(out.contains("<10ms"));
/// assert!(out.contains('#'));
/// ```
///
/// # Panics
///
/// Panics if `width` is too small.
pub fn bar_chart(title: &str, buckets: &[(String, f64)], width: usize) -> String {
    assert!(width >= 8, "bar chart too narrow");
    let label_w = buckets.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
    let max = buckets
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, v) in buckets {
        let bar_len = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:>label_w$} | {:<width$} {}\n",
            label,
            "#".repeat(bar_len),
            format_x(*v)
        ));
    }
    out
}

fn format_x(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Horizontal alignment of one [`Table`] column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (`{:<w$}`).
    Left,
    /// Pad on the left (`{:>w$}`).
    Right,
}

/// The one column-aligned text-table writer of the workspace.
///
/// Both Table-I-style summaries ([`crate::summary::render_table`]) and
/// the bench scorecards render through this: the caller pre-formats each
/// cell (numeric precision, `%` suffixes), the table owns padding,
/// separators, and rules. Cells longer than their column's width are
/// never truncated — they just widen that row, exactly like `format!`
/// width specifiers.
#[derive(Debug)]
pub struct Table {
    indent: String,
    sep: String,
    cols: Vec<(Align, usize)>,
    out: String,
}

impl Table {
    /// Creates a writer emitting `indent` before each row, `sep` between
    /// cells, and padding cell `i` to `cols[i]`'s width and alignment.
    pub fn new(indent: &str, sep: &str, cols: Vec<(Align, usize)>) -> Self {
        Table {
            indent: indent.to_owned(),
            sep: sep.to_owned(),
            cols,
            out: String::new(),
        }
    }

    /// Appends one row. `cells` may be shorter than the column list (the
    /// row just ends early) but not longer.
    ///
    /// # Panics
    ///
    /// Panics if `cells` has more entries than there are columns.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert!(
            cells.len() <= self.cols.len(),
            "row of {} cells exceeds {} columns",
            cells.len(),
            self.cols.len()
        );
        self.out.push_str(&self.indent);
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                self.out.push_str(&self.sep);
            }
            let (align, width) = self.cols[i];
            let cell = cell.as_ref();
            match align {
                Align::Left => {
                    self.out.push_str(cell);
                    for _ in cell.len()..width {
                        self.out.push(' ');
                    }
                }
                Align::Right => {
                    for _ in cell.len()..width {
                        self.out.push(' ');
                    }
                    self.out.push_str(cell);
                }
            }
        }
        self.out.push('\n');
    }

    /// Appends a horizontal rule: every column filled with `-`, joined by
    /// the separator with spaces turned into `-` and `|` into `+` — so a
    /// `" | "` table rules as `"---+---"`.
    pub fn rule(&mut self) {
        self.out.push_str(&self.indent);
        for (i, &(_, width)) in self.cols.iter().enumerate() {
            if i > 0 {
                for c in self.sep.chars() {
                    self.out.push(match c {
                        ' ' => '-',
                        '|' => '+',
                        other => other,
                    });
                }
            }
            for _ in 0..width {
                self.out.push('-');
            }
        }
        self.out.push('\n');
    }

    /// Appends a raw line (no columns), still honouring the indent.
    pub fn line(&mut self, text: &str) {
        self.out.push_str(&self.indent);
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Appends an empty line.
    pub fn blank(&mut self) {
        self.out.push('\n');
    }

    /// The rendered table so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the writer, returning the rendered table.
    pub fn into_string(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_title_legend_and_axes() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 4.0, 9.0];
        let out = line_chart("squares", &xs, &[("y", &ys)], 40, 8);
        assert!(out.contains("squares"));
        assert!(out.contains("* y"));
        assert!(out.contains('|'));
        assert!(out.contains('+'));
    }

    #[test]
    fn multi_series_use_distinct_glyphs() {
        let xs = [0.0, 1.0];
        let a = [1.0, 2.0];
        let b = [2.0, 1.0];
        let out = line_chart("two", &xs, &[("a", &a), ("b", &b)], 30, 6);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 5.0];
        let out = line_chart("flat", &xs, &[("c", &ys)], 30, 6);
        assert!(out.contains('*'));
    }

    #[test]
    fn single_point_chart() {
        let out = line_chart("dot", &[1.0], &[("p", &[2.0][..])], 20, 5);
        assert!(out.contains('*'));
    }

    #[test]
    fn nan_values_are_skipped() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, f64::NAN, 3.0];
        let out = line_chart("gap", &xs, &[("y", &ys)], 30, 6);
        assert!(out.contains('*'));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let out = bar_chart(
            "h",
            &[("a".into(), 10.0), ("b".into(), 5.0), ("c".into(), 0.0)],
            20,
        );
        let lines: Vec<&str> = out.lines().collect();
        let count_hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(count_hashes(lines[1]), 20);
        assert_eq!(count_hashes(lines[2]), 10);
        assert_eq!(count_hashes(lines[3]), 0);
    }

    #[test]
    #[should_panic(expected = "empty x-axis")]
    fn empty_x_panics() {
        line_chart("t", &[], &[], 30, 6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        line_chart("t", &[0.0, 1.0], &[("y", &[1.0][..])], 30, 6);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_panics() {
        line_chart("t", &[0.0], &[], 2, 2);
    }

    #[test]
    fn table_pads_per_column_alignment() {
        let mut t = Table::new(
            "  ",
            " ",
            vec![(Align::Left, 6), (Align::Right, 5), (Align::Right, 4)],
        );
        t.row(&["name", "12", "3"]);
        assert_eq!(t.as_str(), "  name      12    3\n");
    }

    #[test]
    fn table_matches_format_width_specifiers_byte_for_byte() {
        // The contract behind the renderer dedupe: a Table row is the
        // same bytes as the format! width specifiers it replaced.
        let mut t = Table::new("  ", " ", vec![(Align::Left, 16), (Align::Right, 10)]);
        t.row(&["policy".to_owned(), format!("{:.1}", 12.35)]);
        assert_eq!(t.as_str(), format!("  {:<16} {:>10.1}\n", "policy", 12.35));
    }

    #[test]
    fn table_never_truncates_long_cells() {
        let mut t = Table::new("", " ", vec![(Align::Left, 4), (Align::Right, 4)]);
        t.row(&["longer-than-four", "x"]);
        assert_eq!(t.as_str(), "longer-than-four    x\n");
    }

    #[test]
    fn table_rule_maps_pipe_separators_to_plus() {
        let mut t = Table::new("", " | ", vec![(Align::Left, 3), (Align::Right, 2)]);
        t.rule();
        assert_eq!(t.as_str(), "----+---\n");
    }

    #[test]
    fn table_short_rows_line_and_blank() {
        let mut t = Table::new("> ", " ", vec![(Align::Left, 3), (Align::Right, 3)]);
        t.row(&["ab"]);
        t.line("raw");
        t.blank();
        assert_eq!(t.into_string(), "> ab \n> raw\n\n");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn table_rejects_overlong_rows() {
        let mut t = Table::new("", " ", vec![(Align::Left, 3)]);
        t.row(&["a", "b"]);
    }
}
