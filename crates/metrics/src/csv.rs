//! Minimal CSV emission for experiment series.
//!
//! Every figure harness writes its series to `results/*.csv` so they can be
//! re-plotted with external tooling. The format is deliberately plain:
//! a header row, then one numeric row per record.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular table of named numeric columns.
///
/// # Examples
///
/// ```
/// use mlb_metrics::csv::CsvTable;
///
/// let mut t = CsvTable::new(vec!["time_s".into(), "queue".into()]);
/// t.push_row(vec![0.05, 3.0]);
/// t.push_row(vec![0.10, 7.0]);
/// let text = t.to_csv_string();
/// assert!(text.starts_with("time_s,queue\n"));
/// assert!(text.contains("0.1,7\n"));
/// ```
#[derive(Debug, Clone)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl CsvTable {
    /// Creates an empty table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a CSV table needs at least one column");
        CsvTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(headers: &[&str]) -> Self {
        CsvTable::new(headers.iter().map(|s| (*s).to_owned()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != column count {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Builds a table from a shared x-axis and several y-series (all the
    /// same length).
    ///
    /// # Panics
    ///
    /// Panics if any series length differs from the x-axis length.
    pub fn from_series(x_name: &str, xs: &[f64], series: &[(&str, &[f64])]) -> Self {
        let mut headers = vec![x_name.to_owned()];
        headers.extend(series.iter().map(|(n, _)| (*n).to_owned()));
        let mut table = CsvTable::new(headers);
        for (i, &x) in xs.iter().enumerate() {
            let mut row = vec![x];
            for (name, ys) in series {
                assert_eq!(
                    ys.len(),
                    xs.len(),
                    "series {name} length {} != x-axis length {}",
                    ys.len(),
                    xs.len()
                );
                row.push(ys[i]);
            }
            table.push_row(row);
        }
        table
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Serializes to CSV text. Numbers print with up to 6 significant
    /// decimals, trailing zeros trimmed.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for &v in row {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{}", format_number(v));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            // simlint::allow(no-system-io): artifact export to a caller-chosen path; never read back into simulation state
            std::fs::create_dir_all(parent)?;
        }
        // simlint::allow(no-system-io): artifact export to a caller-chosen path; never read back into simulation state
        std::fs::write(path, self.to_csv_string())
    }
}

fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_then_rows() {
        let mut t = CsvTable::with_columns(&["a", "b"]);
        t.push_row(vec![1.0, 2.5]);
        assert_eq!(t.to_csv_string(), "a,b\n1,2.5\n");
    }

    #[test]
    fn integers_print_without_decimals() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-2.0), "-2");
    }

    #[test]
    fn fractions_trim_trailing_zeros() {
        assert_eq!(format_number(0.05), "0.05");
        assert_eq!(format_number(1.234567891), "1.234568");
    }

    #[test]
    fn from_series_zips_columns() {
        let xs = [0.0, 1.0];
        let ya = [10.0, 11.0];
        let yb = [20.0, 21.0];
        let t = CsvTable::from_series("t", &xs, &[("a", &ya), ("b", &yb)]);
        assert_eq!(t.headers(), &["t", "a", "b"]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.to_csv_string(), "t,a,b\n0,10,20\n1,11,21\n");
    }

    #[test]
    fn write_creates_directories() {
        // simlint::allow(no-system-io): test exercises the real artifact writer against a temp dir
        let dir = std::env::temp_dir().join(format!("mlbcsv-{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        let mut t = CsvTable::with_columns(&["x"]);
        t.push_row(vec![1.0]);
        t.write_to(&path).unwrap();
        // simlint::allow(no-system-io): test exercises the real artifact writer against a temp dir
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "x\n1\n");
        // simlint::allow(no-system-io): test exercises the real artifact writer against a temp dir
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = CsvTable::with_columns(&["a"]);
        t.push_row(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        CsvTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn from_series_length_mismatch_panics() {
        let _ = CsvTable::from_series("t", &[0.0, 1.0], &[("a", &[1.0][..])]);
    }
}
