//! `prof.*` — exporting kernel self-profiles through the registry.
//!
//! The kernel's [`KernelProfile`] is plain integers; this module gives it
//! the same export surface as every other measurement in the workspace:
//! stable metric names, JSONL through [`crate::registry::JsonlSink`], an
//! ASCII rendering, and a digest. One wrinkle is determinism: the
//! `.count` metrics are pure functions of the event stream, while the
//! `.wall_ns` metrics are host timing and differ run to run — so
//! [`deterministic_digest`] hashes only the lines whose metric name does
//! not end in `.wall_ns`, and golden tests pin that digest across
//! repeats.

use mlb_simkernel::prof::{KernelProfile, Phase};
use mlb_simkernel::time::{SimDuration, SimTime};

use crate::ascii::{Align, Table};
use crate::registry::{fnv1a, JsonlSink, Registry};

/// Suffix marking host-timing metrics excluded from deterministic
/// digests.
pub const WALL_NS_SUFFIX: &str = ".wall_ns";

/// Flattens a kernel profile into ordered `(metric name, value)` pairs:
/// `prof.phase.*`, `prof.kind.*`, then `prof.wheel.*` (when the run used
/// the wheel backend). Order is stable so exports are byte-stable.
pub fn kernel_pairs(profile: &KernelProfile) -> Vec<(String, u64)> {
    let mut pairs = Vec::new();
    for phase in Phase::ALL {
        let label = phase.label();
        pairs.push((
            format!("prof.phase.{label}.count"),
            profile.phase_count(phase),
        ));
        pairs.push((
            format!("prof.phase.{label}{WALL_NS_SUFFIX}"),
            profile.phase_ns(phase),
        ));
    }
    for (i, name) in profile.kind_names.iter().enumerate() {
        pairs.push((format!("prof.kind.{name}.count"), profile.kind_counts[i]));
        pairs.push((
            format!("prof.kind.{name}{WALL_NS_SUFFIX}"),
            profile.kind_wall_ns[i],
        ));
    }
    if let Some(w) = profile.wheel {
        for (name, value) in [
            ("cascades", w.cascades),
            ("cascade_entries", w.cascade_entries),
            ("level0_jumps", w.level0_jumps),
            ("level_jumps", w.level_jumps),
            ("overflow_pushes", w.overflow_pushes),
            ("overflow_rebases", w.overflow_rebases),
            ("cursor_appends", w.cursor_appends),
            ("cursor_sorted_inserts", w.cursor_sorted_inserts),
            ("max_bucket_len", w.max_bucket_len),
            ("node_allocs", w.node_allocs),
            ("node_reuses", w.node_reuses),
            ("node_peak_live", w.node_peak_live),
        ] {
            pairs.push((format!("prof.wheel.{name}"), value));
        }
    }
    pairs
}

/// Exports name/value pairs as registry JSONL: each pair becomes one
/// counter recorded at `SimTime::ZERO`, so the output reuses the exact
/// line format (and hand-rolled JSON) of every other registry export.
pub fn pairs_to_jsonl(pairs: &[(String, u64)]) -> String {
    let mut reg = Registry::new(SimDuration::from_millis(50));
    let ids: Vec<_> = pairs
        .iter()
        .map(|(name, _)| reg.register_counter(name))
        .collect();
    for (id, (_, value)) in ids.into_iter().zip(pairs) {
        reg.incr(id, SimTime::ZERO, *value);
    }
    reg.finish();
    let mut sink = JsonlSink::new();
    reg.drain_into(&mut sink);
    sink.into_string()
}

/// FNV-1a digest of a profile export, skipping every line whose metric
/// name carries [`WALL_NS_SUFFIX`] — the digest of what *must* be
/// deterministic for a fixed seed.
pub fn deterministic_digest(jsonl: &str) -> u64 {
    let mut kept = String::new();
    for line in jsonl.lines() {
        if !line.contains(WALL_NS_SUFFIX) {
            kept.push_str(line);
            kept.push('\n');
        }
    }
    fnv1a(kept.as_bytes())
}

/// Renders pairs as an aligned two-column ASCII block under `title`.
pub fn render_pairs(title: &str, pairs: &[(String, u64)]) -> String {
    let name_w = pairs.iter().map(|(n, _)| n.len()).max().unwrap_or(6);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut table = Table::new("  ", "  ", vec![(Align::Left, name_w), (Align::Right, 14)]);
    for (name, value) in pairs {
        table.row(&[name.clone(), value.to_string()]);
    }
    out.push_str(table.as_str());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_simkernel::queue::WheelStats;

    fn sample_profile(wall: u64) -> KernelProfile {
        KernelProfile {
            kind_names: &["tick", "tock"],
            kind_counts: vec![3, 4],
            kind_wall_ns: vec![wall, wall * 2],
            phase_counts: [7, 7, 5],
            phase_wall_ns: [wall, wall, wall],
            wheel: Some(WheelStats {
                cascades: 2,
                cascade_entries: 10,
                level0_jumps: 5,
                level_jumps: 1,
                overflow_rebases: 0,
                overflow_pushes: 0,
                cursor_appends: 9,
                cursor_sorted_inserts: 1,
                max_bucket_len: 4,
                node_allocs: 10,
                node_reuses: 6,
                node_peak_live: 4,
            }),
        }
    }

    #[test]
    fn pairs_cover_phases_kinds_and_wheel_in_stable_order() {
        let pairs = kernel_pairs(&sample_profile(100));
        let names: Vec<&str> = pairs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names[0], "prof.phase.drain.count");
        assert_eq!(names[1], "prof.phase.drain.wall_ns");
        assert!(names.contains(&"prof.kind.tick.count"));
        assert!(names.contains(&"prof.wheel.cascades"));
        // 3 phases × 2 + 2 kinds × 2 + 12 wheel counters.
        assert_eq!(pairs.len(), 6 + 4 + 12);
    }

    #[test]
    fn jsonl_reuses_the_registry_line_format() {
        let jsonl = pairs_to_jsonl(&kernel_pairs(&sample_profile(100)));
        let first = jsonl.lines().next().unwrap();
        assert!(first.starts_with("{\"window\":0,\"start_us\":0,"));
        assert!(first.contains("\"metric\":\"prof.phase.drain.count\""));
        assert!(first.contains("\"sum\":7"));
    }

    #[test]
    fn digest_ignores_wall_ns_but_not_counts() {
        let a = pairs_to_jsonl(&kernel_pairs(&sample_profile(100)));
        let b = pairs_to_jsonl(&kernel_pairs(&sample_profile(999)));
        assert_ne!(a, b, "wall-ns differences must show in the raw export");
        assert_eq!(
            deterministic_digest(&a),
            deterministic_digest(&b),
            "wall-ns differences must not move the deterministic digest"
        );
        let mut counts_changed = sample_profile(100);
        counts_changed.kind_counts[0] += 1;
        let c = pairs_to_jsonl(&kernel_pairs(&counts_changed));
        assert_ne!(
            deterministic_digest(&a),
            deterministic_digest(&c),
            "count differences must move the digest"
        );
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let pairs = kernel_pairs(&sample_profile(100));
        let out = render_pairs("kernel profile", &pairs);
        assert!(out.starts_with("kernel profile\n"));
        assert!(out.contains("prof.wheel.max_bucket_len"));
        assert_eq!(out.lines().count(), 1 + pairs.len());
    }

    #[test]
    fn heap_runs_export_no_wheel_metrics() {
        let mut p = sample_profile(100);
        p.wheel = None;
        let pairs = kernel_pairs(&p);
        assert!(pairs.iter().all(|(n, _)| !n.starts_with("prof.wheel.")));
    }
}
