//! Per-request span traces and VLRT root-cause attribution.
//!
//! The paper's "milliScope"-style instrumentation records, for every
//! request, the precise instants at which it crossed each component of
//! the n-tier system. This module is the storage and analysis side of
//! that instrumentation, independent of the simulator that feeds it:
//!
//! * [`SpanKind`]/[`SpanEvent`] — the typed vocabulary of lifecycle
//!   events (issue, drop, retransmit, routing decisions, backend hops);
//! * [`RequestTrace`] — one request's ordered event timeline, from which
//!   the six response-time segments of
//!   `mlb_ntier`'s `PhaseBreakdown` can be re-derived per request;
//! * [`TraceLog`] — a bounded ring of completed traces plus streaming
//!   VLRT attribution: for every response above the VLRT threshold, which
//!   segment dominated and which millibottleneck ([`StallWindow`]) the
//!   request overlapped.
//!
//! The log is deliberately cheap: events are plain copyable enums pushed
//! into per-request vectors, retention is bounded, and everything is
//! deterministic — two identical simulations produce byte-identical
//! traces (see [`TraceLog::digest`]).

use std::collections::VecDeque;

use mlb_simkernel::time::{SimDuration, SimTime};

/// One typed lifecycle event in a request's trace.
///
/// Backend indices are zero-based Tomcat slots; `lb_value` is the
/// balancer's scoreboard value for the chosen backend *at decision time*;
/// `attempt` counts TCP transmissions of the request (first send = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Client issued the request (first transmission).
    Issued {
        /// Issuing client id.
        client: u64,
        /// Front-end Apache slot the client is wired to.
        apache: u16,
    },
    /// The request reached its Apache (transmission `attempt`).
    Arrived {
        /// Transmission number that reached the server.
        attempt: u32,
    },
    /// The accept queue was full; the packet was dropped.
    Dropped {
        /// Transmission number that was dropped.
        attempt: u32,
    },
    /// TCP scheduled a retransmission after `wait` (the 1 s / 2 s / 4 s
    /// exponential backoff clusters).
    RetransmitScheduled {
        /// Transmission number about to be re-sent.
        attempt: u32,
        /// RTO wait before the retransmission.
        wait: SimDuration,
    },
    /// An Apache worker thread claimed the request.
    Admitted,
    /// Apache parsing finished; balancer routing began.
    RoutingStarted,
    /// `get_endpoint` found the AJP pool to `backend` exhausted and will
    /// poll again after `sleep`.
    EndpointBusy {
        /// Polled backend.
        backend: u16,
        /// Poll sleep before the next attempt.
        sleep: SimDuration,
    },
    /// The mechanism stopped polling `backend` and re-entered selection.
    EndpointGaveUp {
        /// Abandoned backend.
        backend: u16,
    },
    /// Selection found no eligible backend; the worker sleeps and retries.
    NoCandidate {
        /// Selection retry sleep.
        sleep: SimDuration,
    },
    /// A CPing probe was sent to `backend` before forwarding.
    ProbeSent {
        /// Probed backend.
        backend: u16,
    },
    /// The CPing probe to `backend` timed out (backend frozen).
    ProbeTimedOut {
        /// Unresponsive backend.
        backend: u16,
    },
    /// An AJP endpoint to `backend` was acquired; the request is
    /// committed there. `lb_value` is the policy's scoreboard value for
    /// that backend at this decision.
    EndpointAcquired {
        /// Chosen backend.
        backend: u16,
        /// Policy lb_value of the chosen backend at decision time.
        lb_value: u64,
    },
    /// The request reached its Tomcat (`queued` if no thread was free).
    ArrivedBackend {
        /// Receiving backend.
        backend: u16,
        /// Whether it had to queue for a servlet thread.
        queued: bool,
    },
    /// A servlet thread started executing the request.
    BackendStarted,
    /// A MySQL query round-trip was dispatched (`remaining` still to go).
    DbDispatched {
        /// Queries left after this one.
        remaining: u32,
    },
    /// Servlet finished; the response is travelling back to Apache.
    Responding,
    /// The response reached the front-end Apache.
    RepliedFrontend,
    /// The client received the response (`rt` = end-to-end response
    /// time from first transmission).
    Completed {
        /// End-to-end response time.
        rt: SimDuration,
    },
    /// The request terminally failed (RTO schedule or routing budget
    /// exhausted) after `elapsed` since first transmission.
    Failed {
        /// Time from first transmission to the failure.
        elapsed: SimDuration,
    },
}

/// One timestamped span event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Simulation instant of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: SpanKind,
}

/// The six response-time segments, mirroring `PhaseBreakdown`'s order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// First transmission to last arrival at Apache (drops + RTO waits).
    RetransmitWait,
    /// Accept-queue wait for an Apache worker.
    ApacheAdmission,
    /// Apache run-queue wait plus parsing burst.
    ApacheCpu,
    /// Balancer selection, `get_endpoint` polling, probing.
    Routing,
    /// Endpoint acquisition to response back at Apache.
    Backend,
    /// Apache back to the client.
    Response,
}

impl Segment {
    /// All segments in breakdown order.
    pub const ALL: [Segment; 6] = [
        Segment::RetransmitWait,
        Segment::ApacheAdmission,
        Segment::ApacheCpu,
        Segment::Routing,
        Segment::Backend,
        Segment::Response,
    ];

    /// Human label (matches `PhaseBreakdown::labels`).
    pub fn label(self) -> &'static str {
        match self {
            Segment::RetransmitWait => "retransmit wait",
            Segment::ApacheAdmission => "apache admission",
            Segment::ApacheCpu => "apache cpu",
            Segment::Routing => "routing/get_endpoint",
            Segment::Backend => "backend (tomcat+db)",
            Segment::Response => "response",
        }
    }

    /// Index into a `[u64; 6]` segment array.
    pub fn index(self) -> usize {
        match self {
            Segment::RetransmitWait => 0,
            Segment::ApacheAdmission => 1,
            Segment::ApacheCpu => 2,
            Segment::Routing => 3,
            Segment::Backend => 4,
            Segment::Response => 5,
        }
    }
}

/// One request's ordered event timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
// simlint::state(observer)
pub struct RequestTrace {
    /// The logical request id.
    pub id: u64,
    /// Events in simulation order.
    pub events: Vec<SpanEvent>,
}

impl RequestTrace {
    /// An empty trace for request `id`.
    pub fn new(id: u64) -> Self {
        RequestTrace {
            id,
            events: Vec::new(),
        }
    }

    /// An empty trace for request `id` reusing a retired trace's event
    /// buffer (cleared, allocation kept) — the span half of the
    /// allocation-free steady state.
    pub fn recycled(id: u64, mut events: Vec<SpanEvent>) -> Self {
        events.clear();
        RequestTrace { id, events }
    }

    /// Consumes the trace, returning its event buffer for reuse via
    /// [`RequestTrace::recycled`].
    pub fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }

    /// Appends one event. Events must be pushed in simulation order.
    pub fn push(&mut self, at: SimTime, kind: SpanKind) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.at <= at),
            "span events must be pushed in simulation order"
        );
        self.events.push(SpanEvent { at, kind });
    }

    /// The instant of the first event, if any.
    pub fn issued_at(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }

    /// The instant of the last event, if any.
    pub fn last_at(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// The end-to-end response time, if the request completed.
    pub fn response_time(&self) -> Option<SimDuration> {
        // simlint::allow(match-exhaustive): only Completed carries the rt; no other variant, present or future, can end a request
        self.events.iter().rev().find_map(|e| match e.kind {
            SpanKind::Completed { rt } => Some(rt),
            _ => None,
        })
    }

    /// Total TCP transmissions of the request (1 = never dropped).
    pub fn attempts(&self) -> u32 {
        // simlint::allow(match-exhaustive): attempt counters live only on Arrived/Dropped; every other event maps to the 1-transmission floor
        self.events
            .iter()
            .map(|e| match e.kind {
                SpanKind::Arrived { attempt } | SpanKind::Dropped { attempt } => attempt,
                _ => 1,
            })
            .max()
            .unwrap_or(1)
    }

    /// The backend that finally served the request, if one was acquired.
    pub fn served_by(&self) -> Option<u16> {
        // simlint::allow(match-exhaustive): EndpointAcquired is by construction the only variant naming the serving backend
        self.events.iter().rev().find_map(|e| match e.kind {
            SpanKind::EndpointAcquired { backend, .. } => Some(backend),
            _ => None,
        })
    }

    /// Re-derives the six per-request segments (µs, breakdown order) from
    /// the timeline. Returns `None` unless the trace contains the full
    /// completed lifecycle; when `Some`, the segments sum exactly to the
    /// recorded response time.
    pub fn segments_us(&self) -> Option<[u64; 6]> {
        let issued = self.issued_at()?;
        let mut arrived = None;
        let mut admitted = None;
        let mut routed = None;
        let mut acquired = None;
        let mut replied = None;
        let mut done = None;
        for e in &self.events {
            match e.kind {
                SpanKind::Arrived { .. } => arrived = Some(e.at),
                SpanKind::Admitted => admitted = admitted.or(Some(e.at)),
                SpanKind::RoutingStarted => routed = routed.or(Some(e.at)),
                // A probe timeout releases the endpoint; the *last*
                // acquisition is the one that served the request.
                SpanKind::EndpointAcquired { .. } => acquired = Some(e.at),
                SpanKind::RepliedFrontend => replied = Some(e.at),
                SpanKind::Completed { .. } => done = Some(e.at),
                // The remaining lifecycle events mark waiting or
                // backend-internal progress between the six segment
                // edges; spelled out so a new variant forces a decision
                // about which segment it bounds.
                SpanKind::Issued { .. }
                | SpanKind::Dropped { .. }
                | SpanKind::RetransmitScheduled { .. }
                | SpanKind::EndpointBusy { .. }
                | SpanKind::EndpointGaveUp { .. }
                | SpanKind::NoCandidate { .. }
                | SpanKind::ProbeSent { .. }
                | SpanKind::ProbeTimedOut { .. }
                | SpanKind::ArrivedBackend { .. }
                | SpanKind::BackendStarted
                | SpanKind::DbDispatched { .. }
                | SpanKind::Responding
                | SpanKind::Failed { .. } => {}
            }
        }
        let (arrived, admitted, routed, acquired, replied, done) =
            (arrived?, admitted?, routed?, acquired?, replied?, done?);
        Some([
            arrived.saturating_since(issued).as_micros(),
            admitted.saturating_since(arrived).as_micros(),
            routed.saturating_since(admitted).as_micros(),
            acquired.saturating_since(routed).as_micros(),
            replied.saturating_since(acquired).as_micros(),
            done.saturating_since(replied).as_micros(),
        ])
    }

    /// The segment holding the largest share of the response time.
    pub fn dominant_segment(&self) -> Option<Segment> {
        let segs = self.segments_us()?;
        let (mut best, mut best_us) = (Segment::RetransmitWait, 0u64);
        for s in Segment::ALL {
            if segs[s.index()] > best_us {
                best_us = segs[s.index()];
                best = s;
            }
        }
        Some(best)
    }

    /// Renders the timeline as human-readable lines, with offsets in
    /// milliseconds relative to the first transmission.
    pub fn render(&self) -> String {
        let Some(issued) = self.issued_at() else {
            return "  (empty trace)\n".to_owned();
        };
        let mut out = String::new();
        for e in &self.events {
            let off = e.at.saturating_since(issued).as_millis_f64();
            let line = match e.kind {
                SpanKind::Issued { client, apache } => {
                    format!("issued by client {client} toward apache{}", apache + 1)
                }
                SpanKind::Arrived { attempt } => {
                    format!("arrived at apache (transmission {attempt})")
                }
                SpanKind::Dropped { attempt } => {
                    format!("accept queue full -> packet DROPPED (transmission {attempt})")
                }
                SpanKind::RetransmitScheduled { attempt, wait } => format!(
                    "TCP retransmit {attempt} scheduled after {:.0} ms RTO",
                    wait.as_millis_f64()
                ),
                SpanKind::Admitted => "worker thread claimed the request".to_owned(),
                SpanKind::RoutingStarted => "apache parse done; routing started".to_owned(),
                SpanKind::EndpointBusy { backend, sleep } => format!(
                    "get_endpoint: tomcat{} pool exhausted, polling again in {:.0} ms",
                    backend + 1,
                    sleep.as_millis_f64()
                ),
                SpanKind::EndpointGaveUp { backend } => {
                    format!("get_endpoint: gave up on tomcat{}", backend + 1)
                }
                SpanKind::NoCandidate { sleep } => format!(
                    "selection: no eligible backend, retrying in {:.0} ms",
                    sleep.as_millis_f64()
                ),
                SpanKind::ProbeSent { backend } => {
                    format!("CPing probe sent to tomcat{}", backend + 1)
                }
                SpanKind::ProbeTimedOut { backend } => {
                    format!("CPing probe to tomcat{} TIMED OUT", backend + 1)
                }
                SpanKind::EndpointAcquired { backend, lb_value } => format!(
                    "endpoint acquired on tomcat{} (lb_value {lb_value})",
                    backend + 1
                ),
                SpanKind::ArrivedBackend { backend, queued } => format!(
                    "arrived at tomcat{}{}",
                    backend + 1,
                    if queued { " (queued for a thread)" } else { "" }
                ),
                SpanKind::BackendStarted => "servlet thread started".to_owned(),
                SpanKind::DbDispatched { remaining } => {
                    format!("MySQL query dispatched ({remaining} more after this)")
                }
                SpanKind::Responding => "servlet done; response heading back".to_owned(),
                SpanKind::RepliedFrontend => "response reached apache".to_owned(),
                SpanKind::Completed { rt } => {
                    format!(
                        "client received response (rt = {:.1} ms)",
                        rt.as_millis_f64()
                    )
                }
                SpanKind::Failed { elapsed } => {
                    format!("request FAILED after {:.1} ms", elapsed.as_millis_f64())
                }
            };
            out.push_str(&format!("  {off:>10.3} ms  {line}\n"));
        }
        out
    }
}

/// The cause of one stall (millibottleneck) window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// pdflush dirty-page write-back froze the server.
    Flush,
    /// A stop-the-world garbage collection froze the server.
    Gc,
}

impl StallKind {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::Flush => "dirty-page flush",
            StallKind::Gc => "GC pause",
        }
    }
}

/// One server freeze interval — a millibottleneck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallWindow {
    /// The frozen server's label (e.g. `"tomcat2"`).
    pub server: String,
    /// What froze it.
    pub kind: StallKind,
    /// Freeze start.
    pub start: SimTime,
    /// Freeze end.
    pub end: SimTime,
}

impl StallWindow {
    /// Overlap between this stall and `[from, to]`.
    pub fn overlap(&self, from: SimTime, to: SimTime) -> SimDuration {
        let lo = self.start.max(from);
        let hi = self.end.min(to);
        hi.saturating_since(lo)
    }
}

/// One attributed very-long-response-time request: its full trace, its
/// per-segment split, the dominant segment, and the millibottleneck it
/// overlapped (if any).
#[derive(Debug, Clone)]
pub struct VlrtCause {
    /// The request's full timeline.
    pub trace: RequestTrace,
    /// Per-segment µs, breakdown order.
    pub segments_us: [u64; 6],
    /// The segment holding the largest share.
    pub dominant: Segment,
    /// Index into [`TraceLog::stalls`] of the stall with the largest
    /// overlap with the request's lifetime, if any overlap exists.
    pub stall: Option<usize>,
    /// That stall's overlap with the request's lifetime.
    pub overlap: SimDuration,
}

impl VlrtCause {
    /// Renders the causal chain: header, segment split, overlapped
    /// millibottleneck, then the full timeline.
    pub fn render(&self, stalls: &[StallWindow]) -> String {
        let rt = self
            .trace
            .response_time()
            .unwrap_or(SimDuration::ZERO)
            .as_millis_f64();
        let total: u64 = self.segments_us.iter().sum();
        let share = if total > 0 {
            self.segments_us[self.dominant.index()] as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        let mut out = format!(
            "VLRT request {} (rt = {rt:.1} ms; dominant segment: {} at {share:.1}%)\n",
            self.trace.id,
            self.dominant.label()
        );
        for s in Segment::ALL {
            let us = self.segments_us[s.index()];
            if us > 0 {
                out.push_str(&format!(
                    "    {:<22} {:>10.3} ms\n",
                    s.label(),
                    us as f64 / 1_000.0
                ));
            }
        }
        match self.stall.and_then(|i| stalls.get(i)) {
            Some(w) => out.push_str(&format!(
                "  overlapped millibottleneck: {} on {} at {:.3}-{:.3} s ({:.0} ms overlap)\n",
                w.kind.label(),
                w.server,
                w.start.as_micros() as f64 / 1e6,
                w.end.as_micros() as f64 / 1e6,
                self.overlap.as_millis_f64()
            )),
            None => out.push_str("  no millibottleneck overlapped this request's lifetime\n"),
        }
        out.push_str(&self.trace.render());
        out
    }
}

/// Aggregate VLRT attribution over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributionSummary {
    /// VLRTs whose dominant segment was each of the six segments.
    pub dominant_counts: [u64; 6],
    /// Total VLRT completions seen.
    pub vlrt_total: u64,
    /// VLRTs whose lifetime overlapped at least one stall window.
    pub overlapping_stall: u64,
}

impl AttributionSummary {
    /// Fraction of VLRTs dominated by retransmit wait or routing — the
    /// paper's claim is that this is where the 1 s / 2 s / 4 s clusters
    /// come from, not from backend service time.
    pub fn network_or_routing_share(&self) -> f64 {
        if self.vlrt_total == 0 {
            return 0.0;
        }
        let net = self.dominant_counts[Segment::RetransmitWait.index()]
            + self.dominant_counts[Segment::Routing.index()];
        net as f64 / self.vlrt_total as f64
    }

    /// Renders the per-segment attribution table.
    pub fn render(&self) -> String {
        if self.vlrt_total == 0 {
            return "no VLRT requests observed\n".to_owned();
        }
        let mut out = format!("VLRT attribution over {} request(s):\n", self.vlrt_total);
        for s in Segment::ALL {
            let n = self.dominant_counts[s.index()];
            out.push_str(&format!(
                "  dominated by {:<22} {:>8}  ({:>5.1}%)\n",
                s.label(),
                n,
                n as f64 / self.vlrt_total as f64 * 100.0
            ));
        }
        out.push_str(&format!(
            "  overlapping a millibottleneck {:>6}  ({:>5.1}%)\n",
            self.overlapping_stall,
            self.overlapping_stall as f64 / self.vlrt_total as f64 * 100.0
        ));
        out
    }
}

/// Bounded storage for completed traces plus streaming VLRT attribution.
#[derive(Debug)]
pub struct TraceLog {
    /// Ring of the most recent completed (or failed) traces.
    recent: VecDeque<RequestTrace>,
    capacity: usize,
    /// Retained VLRT causal chains (bounded by `vlrt_capacity`).
    vlrt: Vec<VlrtCause>,
    vlrt_capacity: usize,
    /// Every stall (millibottleneck) window observed, in order.
    pub stalls: Vec<StallWindow>,
    /// Streaming attribution over *all* VLRTs, retained or not.
    pub summary: AttributionSummary,
    /// Completed requests folded in.
    pub completed: u64,
    /// Failed requests folded in.
    pub failed: u64,
}

impl TraceLog {
    /// An empty log retaining at most `capacity` recent traces and
    /// `vlrt_capacity` VLRT causal chains.
    pub fn new(capacity: usize, vlrt_capacity: usize) -> Self {
        TraceLog {
            recent: VecDeque::with_capacity(capacity.min(1_024)),
            capacity,
            vlrt: Vec::new(),
            vlrt_capacity,
            stalls: Vec::new(),
            summary: AttributionSummary::default(),
            completed: 0,
            failed: 0,
        }
    }

    /// Records one stall window. Windows must arrive in start order (the
    /// simulator emits them when the stall begins, with a known end).
    pub fn record_stall(&mut self, server: String, kind: StallKind, start: SimTime, end: SimTime) {
        self.stalls.push(StallWindow {
            server,
            kind,
            start,
            end,
        });
    }

    /// Folds in one finished trace. `vlrt_threshold` decides whether the
    /// request enters the attribution path. Returns the trace this record
    /// retired — the ring's evicted oldest, or the input itself when the
    /// ring retains nothing — so callers can recycle its event buffer
    /// instead of letting the allocation die.
    pub fn record(
        &mut self,
        trace: RequestTrace,
        vlrt_threshold: SimDuration,
    ) -> Option<RequestTrace> {
        match trace.response_time() {
            Some(rt) => {
                self.completed += 1;
                if rt > vlrt_threshold {
                    self.attribute_vlrt(&trace);
                }
            }
            None => self.failed += 1,
        }
        if self.capacity == 0 {
            return Some(trace);
        }
        let evicted = if self.recent.len() == self.capacity {
            self.recent.pop_front()
        } else {
            None
        };
        self.recent.push_back(trace);
        evicted
    }

    fn attribute_vlrt(&mut self, trace: &RequestTrace) {
        self.summary.vlrt_total += 1;
        let Some(segments_us) = trace.segments_us() else {
            return;
        };
        let dominant = trace
            .dominant_segment()
            .expect("segments_us implies a dominant segment");
        self.summary.dominant_counts[dominant.index()] += 1;
        // The stall that best explains this request: largest overlap with
        // its lifetime. Stalls are few (one per millibottleneck), so a
        // linear scan per VLRT is fine.
        let (from, to) = (
            trace.issued_at().expect("segments imply events"),
            trace.last_at().expect("segments imply events"),
        );
        let mut stall = None;
        let mut overlap = SimDuration::ZERO;
        for (i, w) in self.stalls.iter().enumerate() {
            let o = w.overlap(from, to);
            if o > overlap {
                overlap = o;
                stall = Some(i);
            }
        }
        if stall.is_some() {
            self.summary.overlapping_stall += 1;
        }
        if self.vlrt.len() < self.vlrt_capacity {
            self.vlrt.push(VlrtCause {
                trace: trace.clone(),
                segments_us,
                dominant,
                stall,
                overlap,
            });
        }
    }

    /// The retained recent traces, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &RequestTrace> {
        self.recent.iter()
    }

    /// The retained VLRT causal chains, in completion order.
    pub fn vlrt_causes(&self) -> &[VlrtCause] {
        &self.vlrt
    }

    /// Sum of a trace's segments for every retained recent trace that
    /// completed, paired with its recorded response time (for invariant
    /// checks: the two must be equal).
    pub fn segment_sum_pairs(&self) -> Vec<(u64, u64)> {
        self.recent
            .iter()
            .filter_map(|t| {
                let rt = t.response_time()?.as_micros();
                let sum: u64 = t.segments_us()?.iter().sum();
                Some((sum, rt))
            })
            .collect()
    }

    /// An order-sensitive FNV-1a digest of every retained trace, VLRT
    /// attribution and stall window — two identical simulations must
    /// produce identical digests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let mut mix_event = |id: u64, e: &SpanEvent| {
            mix(id);
            mix(e.at.as_micros());
            // Tag + payload per variant keeps distinct kinds distinct.
            let (tag, a, b) = match e.kind {
                SpanKind::Issued { client, apache } => (1, client, u64::from(apache)),
                SpanKind::Arrived { attempt } => (2, u64::from(attempt), 0),
                SpanKind::Dropped { attempt } => (3, u64::from(attempt), 0),
                SpanKind::RetransmitScheduled { attempt, wait } => {
                    (4, u64::from(attempt), wait.as_micros())
                }
                SpanKind::Admitted => (5, 0, 0),
                SpanKind::RoutingStarted => (6, 0, 0),
                SpanKind::EndpointBusy { backend, sleep } => {
                    (7, u64::from(backend), sleep.as_micros())
                }
                SpanKind::EndpointGaveUp { backend } => (8, u64::from(backend), 0),
                SpanKind::NoCandidate { sleep } => (9, sleep.as_micros(), 0),
                SpanKind::ProbeSent { backend } => (10, u64::from(backend), 0),
                SpanKind::ProbeTimedOut { backend } => (11, u64::from(backend), 0),
                SpanKind::EndpointAcquired { backend, lb_value } => {
                    (12, u64::from(backend), lb_value)
                }
                SpanKind::ArrivedBackend { backend, queued } => {
                    (13, u64::from(backend), u64::from(queued))
                }
                SpanKind::BackendStarted => (14, 0, 0),
                SpanKind::DbDispatched { remaining } => (15, u64::from(remaining), 0),
                SpanKind::Responding => (16, 0, 0),
                SpanKind::RepliedFrontend => (17, 0, 0),
                SpanKind::Completed { rt } => (18, rt.as_micros(), 0),
                SpanKind::Failed { elapsed } => (19, elapsed.as_micros(), 0),
            };
            mix(tag);
            mix(a);
            mix(b);
        };
        for t in &self.recent {
            for e in &t.events {
                mix_event(t.id, e);
            }
        }
        for c in &self.vlrt {
            mix(c.trace.id);
            mix(c.dominant.index() as u64);
            for &s in &c.segments_us {
                mix(s);
            }
        }
        for w in &self.stalls {
            mix(w.start.as_micros());
            mix(w.end.as_micros());
            mix(w.server.len() as u64);
        }
        mix(self.summary.vlrt_total);
        mix(self.summary.overlapping_stall);
        mix(self.completed);
        mix(self.failed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A full lifecycle with one drop + 1 s retransmission.
    fn dropped_then_served() -> RequestTrace {
        let mut tr = RequestTrace::new(7);
        tr.push(
            t(0),
            SpanKind::Issued {
                client: 3,
                apache: 0,
            },
        );
        tr.push(t(1), SpanKind::Dropped { attempt: 1 });
        tr.push(
            t(1),
            SpanKind::RetransmitScheduled {
                attempt: 2,
                wait: SimDuration::from_millis(1_000),
            },
        );
        tr.push(t(1_001), SpanKind::Arrived { attempt: 2 });
        tr.push(t(1_003), SpanKind::Admitted);
        tr.push(t(1_004), SpanKind::RoutingStarted);
        tr.push(
            t(1_005),
            SpanKind::EndpointAcquired {
                backend: 1,
                lb_value: 42,
            },
        );
        tr.push(
            t(1_006),
            SpanKind::ArrivedBackend {
                backend: 1,
                queued: false,
            },
        );
        tr.push(t(1_020), SpanKind::Responding);
        tr.push(t(1_021), SpanKind::RepliedFrontend);
        tr.push(
            t(1_022),
            SpanKind::Completed {
                rt: SimDuration::from_millis(1_022),
            },
        );
        tr
    }

    #[test]
    fn segments_partition_response_time() {
        let tr = dropped_then_served();
        let segs = tr.segments_us().unwrap();
        let sum: u64 = segs.iter().sum();
        assert_eq!(sum, tr.response_time().unwrap().as_micros());
        // The 1 s retransmission dominates.
        assert_eq!(tr.dominant_segment(), Some(Segment::RetransmitWait));
        assert_eq!(segs[Segment::RetransmitWait.index()], 1_001_000);
        assert_eq!(tr.attempts(), 2);
        assert_eq!(tr.served_by(), Some(1));
    }

    #[test]
    fn incomplete_trace_has_no_segments() {
        let mut tr = RequestTrace::new(1);
        tr.push(
            t(0),
            SpanKind::Issued {
                client: 0,
                apache: 0,
            },
        );
        tr.push(t(2), SpanKind::Arrived { attempt: 1 });
        assert!(tr.segments_us().is_none());
        assert!(tr.response_time().is_none());
    }

    #[test]
    fn probe_retry_uses_last_acquisition() {
        let mut tr = RequestTrace::new(2);
        tr.push(
            t(0),
            SpanKind::Issued {
                client: 0,
                apache: 0,
            },
        );
        tr.push(t(1), SpanKind::Arrived { attempt: 1 });
        tr.push(t(1), SpanKind::Admitted);
        tr.push(t(2), SpanKind::RoutingStarted);
        tr.push(
            t(3),
            SpanKind::EndpointAcquired {
                backend: 0,
                lb_value: 1,
            },
        );
        tr.push(t(3), SpanKind::ProbeSent { backend: 0 });
        tr.push(t(103), SpanKind::ProbeTimedOut { backend: 0 });
        tr.push(
            t(104),
            SpanKind::EndpointAcquired {
                backend: 1,
                lb_value: 2,
            },
        );
        tr.push(t(120), SpanKind::RepliedFrontend);
        tr.push(
            t(121),
            SpanKind::Completed {
                rt: SimDuration::from_millis(121),
            },
        );
        let segs = tr.segments_us().unwrap();
        // Routing covers both acquisitions and the probe timeout.
        assert_eq!(segs[Segment::Routing.index()], 102_000);
        assert_eq!(segs.iter().sum::<u64>(), 121_000);
        assert_eq!(tr.served_by(), Some(1));
    }

    #[test]
    fn ring_capacity_is_respected() {
        let mut log = TraceLog::new(2, 8);
        for id in 0..5 {
            let mut tr = dropped_then_served();
            tr.id = id;
            log.record(tr, SimDuration::from_millis(1_000));
        }
        let kept: Vec<u64> = log.recent().map(|t| t.id).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(log.completed, 5);
        // Attribution is streaming: all 5 VLRTs counted even though only
        // 2 traces are retained.
        assert_eq!(log.summary.vlrt_total, 5);
    }

    #[test]
    fn vlrt_attribution_finds_overlapping_stall() {
        let mut log = TraceLog::new(16, 16);
        log.record_stall("tomcat2".into(), StallKind::Flush, t(0), t(200));
        log.record_stall("tomcat1".into(), StallKind::Gc, t(900), t(1_010));
        log.record(dropped_then_served(), SimDuration::from_millis(1_000));
        assert_eq!(log.summary.vlrt_total, 1);
        assert_eq!(log.summary.overlapping_stall, 1);
        let cause = &log.vlrt_causes()[0];
        assert_eq!(cause.dominant, Segment::RetransmitWait);
        // The flush overlaps 200 ms, the GC only 110 ms.
        assert_eq!(cause.stall, Some(0));
        assert_eq!(cause.overlap, SimDuration::from_millis(200));
        let text = cause.render(&log.stalls);
        assert!(text.contains("dirty-page flush"));
        assert!(text.contains("DROPPED"));
        assert!(text.contains("retransmit wait"));
    }

    #[test]
    fn summary_shares_and_render() {
        let mut log = TraceLog::new(4, 4);
        log.record(dropped_then_served(), SimDuration::from_millis(1_000));
        let s = log.summary;
        assert!((s.network_or_routing_share() - 1.0).abs() < 1e-12);
        assert!(s.render().contains("retransmit wait"));
        assert_eq!(
            AttributionSummary::default().network_or_routing_share(),
            0.0
        );
    }

    #[test]
    fn fast_requests_are_not_attributed() {
        let mut log = TraceLog::new(4, 4);
        let mut tr = RequestTrace::new(9);
        tr.push(
            t(0),
            SpanKind::Issued {
                client: 0,
                apache: 0,
            },
        );
        tr.push(t(1), SpanKind::Arrived { attempt: 1 });
        tr.push(t(1), SpanKind::Admitted);
        tr.push(t(2), SpanKind::RoutingStarted);
        tr.push(
            t(2),
            SpanKind::EndpointAcquired {
                backend: 0,
                lb_value: 0,
            },
        );
        tr.push(t(8), SpanKind::RepliedFrontend);
        tr.push(
            t(9),
            SpanKind::Completed {
                rt: SimDuration::from_millis(9),
            },
        );
        log.record(tr, SimDuration::from_millis(1_000));
        assert_eq!(log.summary.vlrt_total, 0);
        assert_eq!(log.completed, 1);
    }

    #[test]
    fn failed_requests_count_separately() {
        let mut log = TraceLog::new(4, 4);
        let mut tr = RequestTrace::new(3);
        tr.push(
            t(0),
            SpanKind::Issued {
                client: 0,
                apache: 0,
            },
        );
        tr.push(t(1), SpanKind::Dropped { attempt: 1 });
        tr.push(
            t(7_000),
            SpanKind::Failed {
                elapsed: SimDuration::from_millis(7_000),
            },
        );
        log.record(tr, SimDuration::from_millis(1_000));
        assert_eq!(log.failed, 1);
        assert_eq!(log.completed, 0);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = TraceLog::new(8, 8);
        let mut b = TraceLog::new(8, 8);
        a.record(dropped_then_served(), SimDuration::from_millis(1_000));
        b.record(dropped_then_served(), SimDuration::from_millis(1_000));
        assert_eq!(a.digest(), b.digest());
        let mut c = TraceLog::new(8, 8);
        let mut tr = dropped_then_served();
        tr.events[0].at = t(1); // shift one timestamp
        c.record(tr, SimDuration::from_millis(1_000));
        assert_ne!(a.digest(), c.digest());
    }
}
