//! Deterministic streaming telemetry registry.
//!
//! A milliScope-style telemetry bus: typed instruments (counters, gauges,
//! log-scale histograms) are registered **by name** up front, every
//! recording is aggregated into fixed sub-50 ms windows using pure
//! integer-µs arithmetic (no float summation order hazards), and closed
//! windows are drained incrementally through pluggable [`MetricSink`]s —
//! a JSONL event stream for offline analysis, CSV for plotting, or an
//! in-memory vector for tests.
//!
//! Determinism is structural, not aspirational:
//!
//! * instruments live in a `Vec` indexed by registration order — there is
//!   no name hashing anywhere, so identical runs drain identical records
//!   in identical order;
//! * all accumulators are `u64` (counts, integer sums, mins, maxes,
//!   power-of-two histogram buckets), so window aggregates are exact and
//!   platform-independent;
//! * the JSONL export is hand-rolled with a fixed key order, making its
//!   FNV-1a digest a golden value that can be pinned in tests.
//!
//! The hot-path cost of a recording is one window-roll check plus a few
//! integer ops on a pre-allocated cell; `registry_overhead` in
//! `crates/bench` keeps the end-to-end cost honest.

use std::collections::VecDeque;

use mlb_simkernel::time::{SimDuration, SimTime};

use crate::csv::CsvTable;

/// The three instrument types the registry understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count; the window aggregate sums the increments.
    Counter,
    /// Sampled level (queue depth, dirty bytes); the window aggregate
    /// keeps min/max/last of the sampled values.
    Gauge,
    /// Streaming distribution of integer-µs (or byte) observations with
    /// log₂-scale buckets.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Opaque handle returned by registration; indexes the registry's
/// instrument table (registration order, no hashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// One closed aggregation window for one instrument.
///
/// All fields are integers so the record is exact and its serialized
/// form is bit-stable across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// Index of the instrument in registration order.
    pub metric: usize,
    /// Window ordinal (window `w` covers `[w·W, (w+1)·W)`).
    pub window: u64,
    /// Window start in integer µs (`w · W`).
    pub start_us: u64,
    /// Number of recordings that landed in the window.
    pub count: u64,
    /// Integer sum of recorded values (increments / samples / µs).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Last recorded value (gauges: the level at window close).
    pub last: u64,
    /// Non-empty log₂ buckets as `(bit_width, count)` pairs, ascending.
    /// Bucket `b` holds values whose bit width is `b` (0 holds the value
    /// zero). Empty for counters and gauges.
    pub buckets: Vec<(u8, u64)>,
}

/// Receives closed windows as they are drained from the registry.
pub trait MetricSink {
    /// Called once per closed, non-empty (metric, window) pair, in
    /// deterministic order (window, then registration order).
    fn on_window(&mut self, name: &str, kind: MetricKind, record: &WindowRecord);
}

#[derive(Debug)]
struct MetricDef {
    name: String,
    kind: MetricKind,
}

/// Live accumulator for one instrument in the currently open window.
#[derive(Debug, Clone)]
struct Cell {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    last: u64,
    /// 65 buckets (bit widths 0..=64) for histograms, empty otherwise.
    buckets: Vec<u64>,
}

impl Cell {
    fn new(kind: MetricKind) -> Self {
        Cell {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            last: 0,
            buckets: match kind {
                MetricKind::Histogram => vec![0; 65],
                _ => Vec::new(),
            },
        }
    }

    fn reset(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.last = 0;
        for b in &mut self.buckets {
            *b = 0;
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
        if !self.buckets.is_empty() {
            let width = (u64::BITS - value.leading_zeros()) as usize;
            self.buckets[width] += 1;
        }
    }
}

/// The streaming registry: instruments, the open window, and the queue
/// of closed-but-undrained [`WindowRecord`]s.
#[derive(Debug)]
// simlint::state(observer)
pub struct Registry {
    window: SimDuration,
    defs: Vec<MetricDef>,
    cells: Vec<Cell>,
    /// Ordinal of the currently open window; `None` until first record.
    open: Option<u64>,
    pending: VecDeque<WindowRecord>,
    finished: bool,
}

impl Registry {
    /// Creates a registry aggregating into fixed windows of `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a zero-width window cannot bucket
    /// time.
    pub fn new(window: SimDuration) -> Self {
        assert!(
            window.as_micros() > 0,
            "registry window must be a positive duration"
        );
        Registry {
            window,
            defs: Vec::new(),
            cells: Vec::new(),
            open: None,
            pending: VecDeque::new(),
            finished: false,
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no instruments are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Name of an instrument (registration order).
    pub fn name(&self, id: MetricId) -> &str {
        &self.defs[id.0].name
    }

    fn register(&mut self, name: &str, kind: MetricKind) -> MetricId {
        debug_assert!(
            !self.defs.iter().any(|d| d.name == name),
            "metric `{name}` registered twice"
        );
        self.defs.push(MetricDef {
            name: name.to_owned(),
            kind,
        });
        self.cells.push(Cell::new(kind));
        MetricId(self.defs.len() - 1)
    }

    /// Registers a counter.
    pub fn register_counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Counter)
    }

    /// Registers a gauge.
    pub fn register_gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Gauge)
    }

    /// Registers a log₂-bucket streaming histogram.
    pub fn register_histogram(&mut self, name: &str) -> MetricId {
        self.register(name, MetricKind::Histogram)
    }

    /// Closes the open window (if any) and pushes its non-empty cells
    /// onto the pending queue in registration order.
    fn close_open(&mut self) {
        let Some(w) = self.open else { return };
        let start_us = w * self.window.as_micros();
        for (i, cell) in self.cells.iter_mut().enumerate() {
            if cell.count == 0 {
                continue;
            }
            let buckets: Vec<(u8, u64)> = cell
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(b, n)| (b as u8, *n))
                .collect();
            self.pending.push_back(WindowRecord {
                metric: i,
                window: w,
                start_us,
                count: cell.count,
                sum: cell.sum,
                min: cell.min,
                max: cell.max,
                last: cell.last,
                buckets,
            });
            cell.reset();
        }
    }

    /// Rolls the open window forward to the one containing `now`.
    fn roll(&mut self, now: SimTime) {
        let w = now.as_micros() / self.window.as_micros();
        match self.open {
            Some(open) if open == w => {}
            Some(open) => {
                debug_assert!(w > open, "registry time went backwards");
                self.close_open();
                self.open = Some(w);
            }
            None => self.open = Some(w),
        }
    }

    fn record(&mut self, id: MetricId, now: SimTime, value: u64) {
        debug_assert!(!self.finished, "recording into a finished registry");
        self.roll(now);
        self.cells[id.0].record(value);
    }

    /// Adds `n` to a counter at simulated time `now`.
    pub fn incr(&mut self, id: MetricId, now: SimTime, n: u64) {
        debug_assert_eq!(self.defs[id.0].kind, MetricKind::Counter);
        self.record(id, now, n);
    }

    /// Samples a gauge level at simulated time `now`.
    pub fn gauge_set(&mut self, id: MetricId, now: SimTime, value: u64) {
        debug_assert_eq!(self.defs[id.0].kind, MetricKind::Gauge);
        self.record(id, now, value);
    }

    /// Observes one integer value (µs, bytes, …) into a histogram.
    pub fn observe(&mut self, id: MetricId, now: SimTime, value: u64) {
        debug_assert_eq!(self.defs[id.0].kind, MetricKind::Histogram);
        self.record(id, now, value);
    }

    /// Closes the tail window. Call once when the run ends; further
    /// recordings are a logic error (debug-asserted).
    pub fn finish(&mut self) {
        self.close_open();
        self.open = None;
        self.finished = true;
    }

    /// Drains every pending closed window into `sink`, oldest first.
    /// Incremental: safe to call mid-run as often as desired.
    pub fn drain_into(&mut self, sink: &mut dyn MetricSink) {
        while let Some(rec) = self.pending.pop_front() {
            let def = &self.defs[rec.metric];
            sink.on_window(&def.name, def.kind, &rec);
        }
    }

    /// Number of closed windows waiting to be drained.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }
}

/// Percentile estimate over a [`WindowRecord`]'s log₂ buckets.
///
/// `buckets` are ascending `(bit_width, count)` pairs as exported in
/// [`WindowRecord::buckets`]; `permille` is the rank in thousandths
/// (999 = p99.9), saturating at 1000. Returns the *upper bound* of the
/// bucket containing the rank — width `w` covers values of bit width
/// `w`, so the bound is `2^w − 1` (width 0 holds only the value zero;
/// width 64 saturates to `u64::MAX`). `None` for an empty histogram.
///
/// Integer-only on purpose: the rank is `⌈total · permille / 1000⌉`
/// computed in `u128`, so the estimate is exact and this file stays
/// free of float accumulation.
pub fn log2_percentile(buckets: &[(u8, u64)], permille: u32) -> Option<u64> {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return None;
    }
    let permille = u128::from(permille.min(1000));
    let rank = (u128::from(total) * permille).div_ceil(1000).max(1);
    let mut cumulative: u128 = 0;
    let mut last_width = 0;
    for &(width, count) in buckets {
        cumulative += u128::from(count);
        last_width = width;
        if cumulative >= rank {
            break;
        }
    }
    Some(match last_width {
        0 => 0,
        w if w >= 64 => u64::MAX,
        w => (1u64 << w) - 1,
    })
}

/// FNV-1a over a byte slice — same constants as `TraceLog::digest`, so
/// golden values from both subsystems live in one hash family.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Sink that renders each record as one JSON object per line.
///
/// The JSON is hand-rolled (the build environment has no serde): fixed
/// key order, integer-only values, no whitespace variance — so the
/// export is byte-stable and [`JsonlSink::digest`] can be pinned as a
/// golden value.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The export so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the export.
    pub fn into_string(self) -> String {
        self.out
    }

    /// FNV-1a digest of the export bytes.
    pub fn digest(&self) -> u64 {
        fnv1a(self.out.as_bytes())
    }
}

impl MetricSink for JsonlSink {
    fn on_window(&mut self, name: &str, kind: MetricKind, r: &WindowRecord) {
        use std::fmt::Write as _;
        let _ = write!(
            self.out,
            "{{\"window\":{},\"start_us\":{},\"metric\":\"{}\",\"kind\":\"{}\",\
             \"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"last\":{}",
            r.window,
            r.start_us,
            name,
            kind.label(),
            r.count,
            r.sum,
            r.min,
            r.max,
            r.last
        );
        if kind == MetricKind::Histogram {
            self.out.push_str(",\"buckets\":[");
            for (i, (b, n)) in r.buckets.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "[{b},{n}]");
            }
            self.out.push(']');
        }
        self.out.push_str("}\n");
    }
}

/// Sink that renders records as CSV rows (histogram buckets elided).
///
/// Writes its own integer-formatted rows rather than going through
/// [`CsvTable`] (whose cells are `f64`) so 64-bit sums stay exact.
#[derive(Debug)]
pub struct CsvSink {
    out: String,
}

impl Default for CsvSink {
    fn default() -> Self {
        Self::new()
    }
}

impl CsvSink {
    /// A sink holding only the header row.
    pub fn new() -> Self {
        CsvSink {
            out: "window,start_us,metric,kind,count,sum,min,max,last\n".to_owned(),
        }
    }

    /// The CSV text so far (header + one row per record).
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the CSV text.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl MetricSink for CsvSink {
    fn on_window(&mut self, name: &str, kind: MetricKind, r: &WindowRecord) {
        use std::fmt::Write as _;
        let _ = writeln!(
            self.out,
            "{},{},{},{},{},{},{},{},{}",
            r.window,
            r.start_us,
            name,
            kind.label(),
            r.count,
            r.sum,
            r.min,
            r.max,
            r.last
        );
    }
}

/// Sink that keeps every record in memory — for tests and for
/// programmatic post-run inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// `(name, kind, record)` in drain order.
    pub records: Vec<(String, MetricKind, WindowRecord)>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricSink for MemorySink {
    fn on_window(&mut self, name: &str, kind: MetricKind, r: &WindowRecord) {
        self.records.push((name.to_owned(), kind, r.clone()));
    }
}

/// Renders drained records into a [`CsvTable`] keyed by window start —
/// convenience for wiring registry output into the figure harness.
pub fn records_to_table(records: &[(String, MetricKind, WindowRecord)]) -> CsvTable {
    let mut table = CsvTable::with_columns(&["window", "start_us", "count", "sum", "min", "max"]);
    for (_, _, r) in records {
        table.push_row(vec![
            r.window as f64,
            r.start_us as f64,
            r.count as f64,
            r.sum as f64,
            r.min as f64,
            r.max as f64,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn windows_roll_and_aggregate_with_integer_math() {
        let mut reg = Registry::new(SimDuration::from_millis(25));
        let c = reg.register_counter("events");
        let g = reg.register_gauge("queue");
        let h = reg.register_histogram("rt_us");

        reg.incr(c, t(1_000), 1);
        reg.incr(c, t(2_000), 3);
        reg.gauge_set(g, t(3_000), 7);
        reg.observe(h, t(4_000), 1_500);
        // Crossing into window 1 closes window 0.
        reg.incr(c, t(26_000), 1);
        reg.finish();

        let mut mem = MemorySink::new();
        reg.drain_into(&mut mem);
        let names: Vec<&str> = mem.records.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["events", "queue", "rt_us", "events"]);

        let (_, _, ev0) = &mem.records[0];
        assert_eq!((ev0.window, ev0.count, ev0.sum), (0, 2, 4));
        assert_eq!((ev0.min, ev0.max, ev0.last), (1, 3, 3));

        let (_, _, rt) = &mem.records[2];
        // 1500 has bit width 11.
        assert_eq!(rt.buckets, vec![(11, 1)]);

        let (_, _, ev1) = &mem.records[3];
        assert_eq!((ev1.window, ev1.start_us, ev1.sum), (1, 25_000, 1));
    }

    #[test]
    fn jsonl_export_is_deterministic_and_digestible() {
        let build = || {
            let mut reg = Registry::new(SimDuration::from_millis(10));
            let h = reg.register_histogram("lat");
            reg.observe(h, t(0), 0);
            reg.observe(h, t(5), 9);
            reg.observe(h, t(12_000), 1024);
            reg.finish();
            let mut sink = JsonlSink::new();
            reg.drain_into(&mut sink);
            sink
        };
        let a = build();
        let b = build();
        assert_eq!(a.as_str(), b.as_str());
        assert_eq!(a.digest(), b.digest());
        assert!(a.as_str().starts_with("{\"window\":0,"));
        // Value 0 lands in bucket 0, 9 in bucket 4, 1024 in bucket 11.
        assert!(a.as_str().contains("\"buckets\":[[0,1],[4,1]]"));
        assert!(a.as_str().contains("\"buckets\":[[11,1]]"));
    }

    #[test]
    fn empty_windows_produce_no_records() {
        let mut reg = Registry::new(SimDuration::from_millis(10));
        let c = reg.register_counter("sparse");
        reg.incr(c, t(0), 1);
        // A long quiet gap: windows 1..99 must not appear.
        reg.incr(c, t(1_000_000), 1);
        reg.finish();
        let mut mem = MemorySink::new();
        reg.drain_into(&mut mem);
        assert_eq!(mem.records.len(), 2);
        assert_eq!(mem.records[0].2.window, 0);
        assert_eq!(mem.records[1].2.window, 100);
    }

    #[test]
    fn incremental_drain_matches_one_shot_drain() {
        let run = |drain_every: bool| {
            let mut reg = Registry::new(SimDuration::from_millis(10));
            let c = reg.register_counter("n");
            let mut sink = JsonlSink::new();
            for k in 0..50u64 {
                reg.incr(c, t(k * 7_000), 1);
                if drain_every {
                    reg.drain_into(&mut sink);
                }
            }
            reg.finish();
            reg.drain_into(&mut sink);
            sink.into_string()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn csv_sink_renders_integer_rows() {
        let mut reg = Registry::new(SimDuration::from_millis(10));
        let g = reg.register_gauge("dirty");
        reg.gauge_set(g, t(500), u64::from(u32::MAX));
        reg.finish();
        let mut sink = CsvSink::new();
        reg.drain_into(&mut sink);
        let text = sink.into_string();
        assert!(text.starts_with("window,start_us,metric,kind,"));
        assert!(text.contains("0,0,dirty,gauge,1,4294967295,4294967295,4294967295,4294967295"));
    }

    #[test]
    fn log2_percentile_of_empty_histogram_is_none() {
        assert_eq!(log2_percentile(&[], 500), None);
        assert_eq!(log2_percentile(&[(3, 0), (7, 0)], 999), None);
    }

    #[test]
    fn log2_percentile_of_single_sample_hits_its_bucket_at_every_rank() {
        // One value of bit width 5 (16..=31): every permille, including
        // the degenerate 0, lands in that bucket's upper bound.
        for permille in [0, 1, 500, 999, 1000] {
            assert_eq!(log2_percentile(&[(5, 1)], permille), Some(31));
        }
        // Width 0 is the value zero itself.
        assert_eq!(log2_percentile(&[(0, 1)], 999), Some(0));
    }

    #[test]
    fn log2_percentile_on_exact_bucket_boundary() {
        // 999 samples in width 4, 1 sample in width 10: rank(p99.9) =
        // ⌈1000·999/1000⌉ = 999 — exactly the last sample of the first
        // bucket, so p999 must NOT spill into the outlier bucket...
        let buckets = [(4u8, 999u64), (10u8, 1u64)];
        assert_eq!(log2_percentile(&buckets, 999), Some(15));
        // ...while one more thousandth of rank does.
        assert_eq!(log2_percentile(&buckets, 1000), Some(1023));
    }

    #[test]
    fn log2_percentile_saturates_at_the_top_bucket() {
        // Width 64 holds values ≥ 2^63; its bound saturates to u64::MAX
        // instead of overflowing 1 << 64.
        assert_eq!(log2_percentile(&[(64, 3)], 999), Some(u64::MAX));
        // Permille above 1000 clamps rather than over-ranking.
        assert_eq!(log2_percentile(&[(2, 4)], 5000), Some(3));
    }

    #[test]
    fn log2_percentile_matches_cell_bucketing() {
        // End to end: observe values through a real registry window and
        // check the percentile of the exported buckets.
        let mut reg = Registry::new(SimDuration::from_millis(10));
        let h = reg.register_histogram("rt");
        for v in [1u64, 2, 3, 900, 1_500] {
            reg.observe(h, t(100), v);
        }
        reg.finish();
        let mut sink = MemorySink::new();
        reg.drain_into(&mut sink);
        let buckets = &sink.records[0].2.buckets;
        // p50 → rank 3 → value 3 (width 2, bound 3).
        assert_eq!(log2_percentile(buckets, 500), Some(3));
        // p99.9 → rank 5 → 1500 (width 11, bound 2047).
        assert_eq!(log2_percentile(buckets, 999), Some(2047));
    }
}
