//! Response-time histogram (Fig. 4).
//!
//! A fixed-edge histogram over durations, with edges chosen to resolve both
//! the millisecond-scale body and the paper's VLRT clusters at 1 s / 2 s /
//! 3 s. Exact count/sum/max are kept alongside the buckets so means are
//! not bucket-approximated.

use mlb_simkernel::time::SimDuration;

/// A histogram over response times with explicit bucket edges.
///
/// Bucket `i` covers `[edge[i-1], edge[i])` (bucket 0 covers
/// `[0, edge[0])`); one final overflow bucket covers everything at or above
/// the last edge.
///
/// # Examples
///
/// ```
/// use mlb_metrics::histogram::ResponseTimeHistogram;
/// use mlb_simkernel::time::SimDuration;
///
/// let mut h = ResponseTimeHistogram::paper_buckets();
/// h.record(SimDuration::from_millis(3));
/// h.record(SimDuration::from_millis(1_050)); // a VLRT request
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.count_at_or_above(SimDuration::from_secs(1)), 1);
/// assert_eq!(h.count_below(SimDuration::from_millis(10)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ResponseTimeHistogram {
    edges: Vec<SimDuration>,
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u64,
    max: SimDuration,
}

impl ResponseTimeHistogram {
    /// Creates a histogram with the given ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn new(edges: Vec<SimDuration>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        let n = edges.len();
        ResponseTimeHistogram {
            edges,
            buckets: vec![0; n + 1],
            count: 0,
            sum_micros: 0,
            max: SimDuration::ZERO,
        }
    }

    /// Edges resolving both the paper's millisecond body and the 1–3 s
    /// retransmission clusters: 1, 2, 5, 10, 20, 50, 100, 200, 500 ms,
    /// then 250 ms steps up to 4 s, then 8 s.
    pub fn paper_buckets() -> Self {
        let mut edges: Vec<SimDuration> = [1u64, 2, 5, 10, 20, 50, 100, 200, 500]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        let mut ms = 750;
        while ms <= 4_000 {
            edges.push(SimDuration::from_millis(ms));
            ms += 250;
        }
        edges.push(SimDuration::from_secs(8));
        ResponseTimeHistogram::new(edges)
    }

    /// Records one response time.
    pub fn record(&mut self, rt: SimDuration) {
        let idx = self.edges.partition_point(|&e| e <= rt);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(rt.as_micros());
        self.max = self.max.max(rt);
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean response time, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_micros(self.sum_micros / self.count))
    }

    /// Largest recorded response time.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[SimDuration] {
        &self.edges
    }

    /// Bucket counts (`edges().len() + 1` entries, last = overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Iterator of `(lower, upper, count)` per bucket; the overflow
    /// bucket's upper bound is [`SimDuration::MAX`].
    pub fn iter(&self) -> impl Iterator<Item = (SimDuration, SimDuration, u64)> + '_ {
        let lowers = std::iter::once(SimDuration::ZERO).chain(self.edges.iter().copied());
        let uppers = self
            .edges
            .iter()
            .copied()
            .chain(std::iter::once(SimDuration::MAX));
        lowers
            .zip(uppers)
            .zip(self.buckets.iter().copied())
            .map(|((lo, hi), c)| (lo, hi, c))
    }

    /// Samples with `rt >= threshold` (exact only when `threshold` is a
    /// bucket edge; otherwise rounded to the containing bucket).
    pub fn count_at_or_above(&self, threshold: SimDuration) -> u64 {
        // First bucket whose range lies entirely at or above `threshold`
        // (exact when `threshold` is an edge).
        let idx = self.edges.partition_point(|&e| e <= threshold);
        self.buckets[idx..].iter().sum()
    }

    /// Samples with `rt < threshold` (same edge-alignment caveat).
    pub fn count_below(&self, threshold: SimDuration) -> u64 {
        self.count - self.count_at_or_above(threshold)
    }

    /// Approximate quantile (by bucket upper edge). `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(if i < self.edges.len() {
                    self.edges[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Merges another histogram with identical edges into this one.
    ///
    /// # Panics
    ///
    /// Panics if the edge vectors differ.
    pub fn merge(&mut self, other: &ResponseTimeHistogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different edges"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn small() -> ResponseTimeHistogram {
        ResponseTimeHistogram::new(vec![ms(10), ms(100), ms(1_000)])
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut h = small();
        h.record(ms(5)); // [0, 10)
        h.record(ms(10)); // [10, 100)  — edge belongs to upper bucket
        h.record(ms(99)); // [10, 100)
        h.record(ms(500)); // [100, 1000)
        h.record(ms(5_000)); // overflow
        assert_eq!(h.buckets(), &[1, 2, 1, 1]);
    }

    #[test]
    fn mean_and_max_exact() {
        let mut h = small();
        h.record(ms(10));
        h.record(ms(30));
        assert_eq!(h.mean(), Some(ms(20)));
        assert_eq!(h.max(), ms(30));
    }

    #[test]
    fn empty_histogram() {
        let h = small();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn count_above_and_below_at_edges() {
        let mut h = small();
        for v in [1, 5, 9, 10, 50, 200, 1_500] {
            h.record(ms(v));
        }
        assert_eq!(h.count_below(ms(10)), 3);
        assert_eq!(h.count_at_or_above(ms(1_000)), 1);
        assert_eq!(h.count_at_or_above(ms(10)), 4);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = small();
        for _ in 0..90 {
            h.record(ms(5));
        }
        for _ in 0..10 {
            h.record(ms(2_000));
        }
        assert_eq!(h.quantile(0.5), Some(ms(10))); // bucket upper edge
        assert_eq!(h.quantile(0.95), Some(ms(2_000))); // overflow → max
        assert_eq!(h.quantile(1.0), Some(ms(2_000)));
    }

    #[test]
    fn paper_buckets_resolve_retransmission_clusters() {
        let h = ResponseTimeHistogram::paper_buckets();
        for target in [1_000u64, 2_000, 3_000] {
            assert!(
                h.edges().contains(&ms(target)),
                "paper buckets must have an edge at {target} ms"
            );
        }
    }

    #[test]
    fn iter_covers_all_buckets() {
        let mut h = small();
        h.record(ms(5));
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], (SimDuration::ZERO, ms(10), 1));
        assert_eq!(v[3].1, SimDuration::MAX);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = small();
        let mut b = small();
        a.record(ms(5));
        b.record(ms(5));
        b.record(ms(500));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets(), &[2, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn merge_mismatched_edges_panics() {
        let mut a = small();
        let b = ResponseTimeHistogram::new(vec![ms(1)]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_edges_panic() {
        ResponseTimeHistogram::new(vec![ms(10), ms(5)]);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn empty_edges_panic() {
        ResponseTimeHistogram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_quantile_panics() {
        let h = small();
        let _ = h.quantile(1.5);
    }
}
