//! # mlb-metrics — measurement substrate
//!
//! Everything the figure/table harness needs to regenerate the paper's
//! evaluation artifacts:
//!
//! * [`series`] — fixed-window (50 ms) counters and float series for queue
//!   lengths, VLRT counts, CPU utilization, dirty-page size, workload
//!   distribution and lb_value traces.
//! * [`histogram`] — the response-time histogram behind Fig. 4.
//! * [`summary`] — Table I statistics: total requests, average RT, % VLRT,
//!   % normal, plus table rendering.
//! * [`spans`] — per-request span traces (milliScope-style) and VLRT
//!   root-cause attribution against millibottleneck windows.
//! * [`registry`] — the streaming telemetry bus: named counters, gauges
//!   and log-scale histograms aggregated into fixed sub-50 ms windows
//!   with integer-µs accumulation, drained through pluggable sinks
//!   (JSONL, CSV, in-memory).
//! * [`detector`] — online millibottleneck detection over the registry's
//!   window stream (iowait-saturated / queue-spike / frozen-backend
//!   flags, merged into window-aligned `StallWindow`s).
//! * [`heatmap`] — per-window × per-segment VLRT attribution heatmap
//!   (ASCII + `fig_attribution_heatmap.csv`).
//! * [`csv`] — plain CSV emission for external re-plotting.
//! * [`ascii`] — terminal line/bar charts and the shared column-aligned
//!   [`Table`] writer, so every figure is visible directly in the
//!   harness output.
//! * [`prof`] — the `prof.*` namespace: kernel self-profiles exported
//!   through the registry's sinks with a wall-ns-excluding deterministic
//!   digest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ascii;
pub mod csv;
pub mod detector;
pub mod heatmap;
pub mod histogram;
pub mod prof;
pub mod registry;
pub mod series;
pub mod spans;
pub mod summary;

pub use ascii::{Align, Table};
pub use csv::CsvTable;
pub use detector::{DetectorConfig, DetectorFlag, FlagKind, MillibottleneckDetector};
pub use heatmap::AttributionHeatmap;
pub use histogram::ResponseTimeHistogram;
pub use registry::{
    fnv1a, log2_percentile, CsvSink, JsonlSink, MemorySink, MetricId, MetricKind, MetricSink,
    Registry, WindowRecord,
};
pub use series::{WindowAggregate, WindowedCounter, WindowedSeries};
pub use spans::{
    AttributionSummary, RequestTrace, Segment, SpanEvent, SpanKind, StallKind, StallWindow,
    TraceLog, VlrtCause,
};
pub use summary::{render_table, ResponseStats, TableRow, NORMAL_THRESHOLD, VLRT_THRESHOLD};
