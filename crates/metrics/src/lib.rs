//! # mlb-metrics — measurement substrate
//!
//! Everything the figure/table harness needs to regenerate the paper's
//! evaluation artifacts:
//!
//! * [`series`] — fixed-window (50 ms) counters and float series for queue
//!   lengths, VLRT counts, CPU utilization, dirty-page size, workload
//!   distribution and lb_value traces.
//! * [`histogram`] — the response-time histogram behind Fig. 4.
//! * [`summary`] — Table I statistics: total requests, average RT, % VLRT,
//!   % normal, plus table rendering.
//! * [`spans`] — per-request span traces (milliScope-style) and VLRT
//!   root-cause attribution against millibottleneck windows.
//! * [`csv`] — plain CSV emission for external re-plotting.
//! * [`ascii`] — terminal line/bar charts so every figure is visible
//!   directly in the harness output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ascii;
pub mod csv;
pub mod histogram;
pub mod series;
pub mod spans;
pub mod summary;

pub use csv::CsvTable;
pub use histogram::ResponseTimeHistogram;
pub use series::{WindowAggregate, WindowedCounter, WindowedSeries};
pub use spans::{
    AttributionSummary, RequestTrace, Segment, SpanEvent, SpanKind, StallKind, StallWindow,
    TraceLog, VlrtCause,
};
pub use summary::{render_table, ResponseStats, TableRow, NORMAL_THRESHOLD, VLRT_THRESHOLD};
