//! Online millibottleneck detection over streaming window samples.
//!
//! The post-hoc path (`spans::TraceLog`) explains a run after it ends;
//! this module flags millibottlenecks **while they happen**, from the
//! same per-window integer deltas the telemetry registry carries. The
//! key identity it leans on: the CPU model accrues `iowait_core_micros`
//! at full-core rate during *any* freeze (page-flush or GC), so a
//! strictly positive per-window iowait delta holds **iff** a freeze
//! overlapped that window. That makes the online frozen-window set
//! provably equal to the window set the post-hoc stall log overlaps —
//! an equality the integration tests assert on the paper scenarios.
//!
//! Per window and server the detector raises three kinds of flag:
//!
//! * **iowait-saturated** — the window's iowait delta is positive (a
//!   freeze overlapped it);
//! * **queue-spike** — the sampled queue depth crossed the configured
//!   threshold (the queuing amplification the paper traces from a
//!   millibottleneck to upstream tiers);
//! * **frozen-backend** — iowait positive *and* no busy time *and* work
//!   queued: the server sat fully stalled with requests waiting.
//!
//! Consecutive frozen windows on one server merge into a window-aligned
//! [`StallWindow`]. The stall kind is classified online from the dirty
//! page gauge: the page cache only shrinks when a flush completes, so a
//! frozen run that saw the dirty level drop (during the run or at the
//! sample that closes it) is a [`StallKind::Flush`]; one whose dirty
//! level never dropped is a [`StallKind::Gc`].

use mlb_simkernel::time::SimDuration;

use crate::spans::{StallKind, StallWindow};

/// Tunables for the online detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Queue depth at or above which a window is flagged `QueueSpike`.
    pub queue_spike_threshold: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Roughly 1.5–2× the per-tier service capacity in the paper
        // configs; deep enough that steady-state queues stay quiet.
        DetectorConfig {
            queue_spike_threshold: 100,
        }
    }
}

/// Which in-stream signal fired for a `(server, window)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagKind {
    /// Positive iowait delta: a freeze overlapped the window.
    IowaitSaturated,
    /// Sampled queue depth crossed the configured threshold.
    QueueSpike,
    /// Frozen with zero busy time and work queued — a fully stalled
    /// backend, the paper's worst case.
    FrozenBackend,
}

impl FlagKind {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            FlagKind::IowaitSaturated => "iowait-saturated",
            FlagKind::QueueSpike => "queue-spike",
            FlagKind::FrozenBackend => "frozen-backend",
        }
    }
}

/// One raised flag: server slot, window ordinal, and signal kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorFlag {
    /// Server slot (detector label order).
    pub server: usize,
    /// Window ordinal (window `w` covers `[w·W, (w+1)·W)`).
    pub window: u64,
    /// Which signal fired.
    pub kind: FlagKind,
}

/// Per-server run state while a freeze is being tracked.
#[derive(Debug, Clone)]
struct ServerState {
    /// First window of the open frozen run, if one is open.
    run_start: Option<u64>,
    /// Last window observed frozen in the open run.
    run_last: u64,
    /// Whether the dirty level dropped since the run opened.
    saw_dirty_drop: bool,
    /// Dirty level at the previous observation (any window).
    prev_dirty: Option<u64>,
}

impl ServerState {
    fn new() -> Self {
        ServerState {
            run_start: None,
            run_last: 0,
            saw_dirty_drop: false,
            prev_dirty: None,
        }
    }
}

/// Streaming millibottleneck detector fed one observation per server
/// per closed window.
#[derive(Debug)]
pub struct MillibottleneckDetector {
    window: SimDuration,
    cfg: DetectorConfig,
    labels: Vec<String>,
    state: Vec<ServerState>,
    stalls: Vec<StallWindow>,
    flags: Vec<DetectorFlag>,
    last_window: Option<u64>,
}

impl MillibottleneckDetector {
    /// Creates a detector for the given server labels ("apache1",
    /// "tomcat2", "mysql", …) observing windows of width `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration, labels: Vec<String>, cfg: DetectorConfig) -> Self {
        assert!(window.as_micros() > 0, "detector window must be positive");
        let state = labels.iter().map(|_| ServerState::new()).collect();
        MillibottleneckDetector {
            window,
            cfg,
            labels,
            state,
            stalls: Vec::new(),
            flags: Vec::new(),
            last_window: None,
        }
    }

    /// The observation window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Server label for a slot.
    pub fn label(&self, server: usize) -> &str {
        &self.labels[server]
    }

    /// Number of observed servers.
    pub fn server_count(&self) -> usize {
        self.labels.len()
    }

    /// Highest window ordinal observed so far.
    pub fn last_window(&self) -> Option<u64> {
        self.last_window
    }

    /// Feeds the closed window `window` for server slot `server`.
    ///
    /// `iowait_delta_us` and `busy_delta_us` are the integer differences
    /// of the cumulative core-µs counters across the window;
    /// `queue_depth` and `dirty_bytes` are levels sampled at window
    /// close. Observations must arrive in nondecreasing window order.
    pub fn observe(
        &mut self,
        window: u64,
        server: usize,
        iowait_delta_us: u64,
        busy_delta_us: u64,
        queue_depth: u64,
        dirty_bytes: u64,
    ) {
        debug_assert!(
            self.last_window.is_none_or(|w| window >= w),
            "detector observations went backwards"
        );
        self.last_window = Some(self.last_window.map_or(window, |w| w.max(window)));

        let dropped = self.state[server]
            .prev_dirty
            .is_some_and(|prev| dirty_bytes < prev);
        self.state[server].prev_dirty = Some(dirty_bytes);

        if queue_depth >= self.cfg.queue_spike_threshold {
            self.flags.push(DetectorFlag {
                server,
                window,
                kind: FlagKind::QueueSpike,
            });
        }

        if iowait_delta_us > 0 {
            self.flags.push(DetectorFlag {
                server,
                window,
                kind: FlagKind::IowaitSaturated,
            });
            if busy_delta_us == 0 && queue_depth > 0 {
                self.flags.push(DetectorFlag {
                    server,
                    window,
                    kind: FlagKind::FrozenBackend,
                });
            }
            let st = &mut self.state[server];
            if st.run_start.is_none() {
                st.run_start = Some(window);
                st.saw_dirty_drop = false;
            }
            st.run_last = window;
            st.saw_dirty_drop |= dropped;
        } else if self.state[server].run_start.is_some() {
            // The freeze ended before this window: close the run. A
            // flush's dirty drop can surface at the sample that closes
            // the run (flush end on a window boundary), so fold in this
            // observation's drop before classifying.
            let saw_drop = self.state[server].saw_dirty_drop || dropped;
            self.close_run(server, saw_drop);
        }
    }

    fn close_run(&mut self, server: usize, saw_dirty_drop: bool) {
        let st = &mut self.state[server];
        let Some(first) = st.run_start.take() else {
            return;
        };
        let last = st.run_last;
        let kind = if saw_dirty_drop {
            StallKind::Flush
        } else {
            StallKind::Gc
        };
        let w = self.window.as_micros();
        self.stalls.push(StallWindow {
            server: self.labels[server].clone(),
            kind,
            start: mlb_simkernel::time::SimTime::from_micros(first * w),
            end: mlb_simkernel::time::SimTime::from_micros((last + 1) * w),
        });
    }

    /// Closes any frozen runs still open (end of stream).
    pub fn finish(&mut self) {
        for server in 0..self.state.len() {
            let saw = self.state[server].saw_dirty_drop;
            self.close_run(server, saw);
        }
    }

    /// Window-aligned stall windows detected so far, in close order.
    pub fn stalls(&self) -> &[StallWindow] {
        &self.stalls
    }

    /// All raised flags, in observation order.
    pub fn flags(&self) -> &[DetectorFlag] {
        &self.flags
    }

    /// The set of window ordinals a server was observed frozen in
    /// (sorted, deduplicated), reconstructed from the raised
    /// [`FlagKind::FrozenBackend`] flags.
    pub fn frozen_windows(&self, server: usize) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .flags
            .iter()
            .filter(|f| f.server == server && f.kind == FlagKind::FrozenBackend)
            .map(|f| f.window)
            .collect();
        // Flags from interleaved servers are not guaranteed adjacent in
        // the stream, so sort before deduplicating.
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The flags raised at or after index `from` in raise order — a
    /// drain cursor for consumers that react to new flags between calls
    /// (e.g. detector-driven routing).
    pub fn flags_since(&self, from: usize) -> &[DetectorFlag] {
        &self.flags[from.min(self.flags.len())..]
    }

    /// Renders a short human-readable stall report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "online detector: {} stall(s), {} flag(s), {} server(s)",
            self.stalls.len(),
            self.flags.len(),
            self.labels.len()
        );
        for s in &self.stalls {
            let _ = writeln!(
                out,
                "  [{:>9.3}s – {:>9.3}s] {:<8} {}",
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                s.server,
                s.kind.label()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> MillibottleneckDetector {
        MillibottleneckDetector::new(
            SimDuration::from_millis(50),
            vec!["tomcat1".to_owned(), "mysql".to_owned()],
            DetectorConfig::default(),
        )
    }

    #[test]
    fn consecutive_frozen_windows_merge_into_one_stall() {
        let mut d = detector();
        d.observe(0, 0, 0, 40_000, 2, 1_000);
        d.observe(1, 0, 30_000, 10_000, 5, 2_000);
        d.observe(2, 0, 50_000, 0, 9, 2_000);
        d.observe(3, 0, 0, 40_000, 1, 500); // dirty dropped at close
        d.finish();
        assert_eq!(d.stalls().len(), 1);
        let s = &d.stalls()[0];
        assert_eq!(s.server, "tomcat1");
        assert_eq!(s.kind, StallKind::Flush);
        assert_eq!(s.start.as_micros(), 50_000);
        assert_eq!(s.end.as_micros(), 150_000);
        // Window 1 saw iowait but still burned busy time, so only
        // window 2 was fully frozen.
        assert_eq!(d.frozen_windows(0), vec![2]);
    }

    #[test]
    fn frozen_windows_reports_frozen_flags_not_iowait() {
        // Regression: the filter used to match `IowaitSaturated`, so an
        // iowait-only window (busy time still accruing) was wrongly
        // reported as frozen, and the windows of a server whose flags
        // interleave with another server's were returned unsorted
        // relative to dedup.
        let mut d = detector();
        d.observe(0, 0, 20_000, 15_000, 3, 100); // iowait, NOT frozen
        d.observe(1, 0, 50_000, 0, 4, 100); // frozen
        d.observe(1, 1, 50_000, 0, 7, 100); // other server, frozen
        d.observe(2, 0, 50_000, 0, 4, 100); // frozen
        d.observe(2, 1, 0, 40_000, 0, 100);
        d.observe(3, 0, 0, 40_000, 0, 100);
        d.finish();
        assert_eq!(d.frozen_windows(0), vec![1, 2]);
        assert_eq!(d.frozen_windows(1), vec![1]);
    }

    #[test]
    fn flags_since_is_a_drain_cursor() {
        let mut d = detector();
        d.observe(0, 0, 50_000, 0, 4, 100); // iowait + frozen
        let first = d.flags().len();
        assert_eq!(first, 2);
        d.observe(1, 1, 0, 40_000, 250, 100); // queue spike on mysql
        let new: Vec<FlagKind> = d.flags_since(first).iter().map(|f| f.kind).collect();
        assert_eq!(new, vec![FlagKind::QueueSpike]);
        assert!(d.flags_since(d.flags().len()).is_empty());
        assert!(d.flags_since(usize::MAX).is_empty());
    }

    #[test]
    fn run_with_no_dirty_drop_classifies_as_gc() {
        let mut d = detector();
        d.observe(0, 0, 0, 40_000, 0, 1_000);
        d.observe(1, 0, 50_000, 0, 3, 1_000);
        d.observe(2, 0, 0, 40_000, 0, 1_500); // dirty grew after thaw
        d.finish();
        assert_eq!(d.stalls().len(), 1);
        assert_eq!(d.stalls()[0].kind, StallKind::Gc);
    }

    #[test]
    fn open_run_is_closed_by_finish() {
        let mut d = detector();
        d.observe(0, 1, 10_000, 0, 0, 0);
        d.observe(1, 1, 10_000, 0, 0, 0);
        d.finish();
        assert_eq!(d.stalls().len(), 1);
        assert_eq!(d.stalls()[0].server, "mysql");
        assert_eq!(d.stalls()[0].end.as_micros(), 100_000);
    }

    #[test]
    fn flags_cover_the_three_signals() {
        let mut d = detector();
        // Frozen with queue: iowait + frozen-backend.
        d.observe(0, 0, 50_000, 0, 4, 100);
        // Quiet but deep queue: queue-spike only.
        d.observe(1, 0, 0, 40_000, 250, 100);
        d.finish();
        let kinds: Vec<FlagKind> = d.flags().iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlagKind::IowaitSaturated,
                FlagKind::FrozenBackend,
                FlagKind::QueueSpike
            ]
        );
    }

    #[test]
    fn interleaved_servers_keep_independent_runs() {
        let mut d = detector();
        d.observe(0, 0, 10_000, 0, 1, 10);
        d.observe(0, 1, 0, 50_000, 0, 0);
        d.observe(1, 0, 10_000, 0, 1, 5); // drop seen mid-run
        d.observe(1, 1, 20_000, 0, 2, 0);
        d.observe(2, 0, 0, 40_000, 0, 5);
        d.observe(2, 1, 0, 40_000, 0, 0);
        d.finish();
        assert_eq!(d.stalls().len(), 2);
        assert_eq!(d.stalls()[0].server, "tomcat1");
        assert_eq!(d.stalls()[0].kind, StallKind::Flush);
        assert_eq!(d.stalls()[1].server, "mysql");
        assert_eq!(d.stalls()[1].kind, StallKind::Gc);
    }
}
