//! Experiment summary statistics — the rows of the paper's Table I.
//!
//! Table I reports, per policy/mechanism combination: total requests,
//! average response time, % VLRT requests (> 1000 ms), % normal requests
//! (< 10 ms). [`ResponseStats`] accumulates exactly those, plus a couple
//! of tail quantile helpers.

use crate::ascii::{Align, Table};
use mlb_simkernel::time::SimDuration;
use std::fmt;

/// The VLRT threshold used throughout the paper.
pub const VLRT_THRESHOLD: SimDuration = SimDuration::from_millis(1_000);
/// The "normal request" threshold used in Table I.
pub const NORMAL_THRESHOLD: SimDuration = SimDuration::from_millis(10);

/// Streaming response-time statistics for one experiment.
///
/// # Examples
///
/// ```
/// use mlb_metrics::summary::ResponseStats;
/// use mlb_simkernel::time::SimDuration;
///
/// let mut s = ResponseStats::new();
/// s.record(SimDuration::from_millis(3));
/// s.record(SimDuration::from_millis(4));
/// s.record(SimDuration::from_millis(1_500)); // VLRT
/// assert_eq!(s.total(), 3);
/// assert_eq!(s.vlrt_count(), 1);
/// assert!((s.pct_vlrt() - 33.33).abs() < 0.01);
/// assert!((s.pct_normal() - 66.66).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResponseStats {
    count: u64,
    sum_micros: u64,
    vlrt: u64,
    normal: u64,
    max: SimDuration,
}

impl ResponseStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ResponseStats::default()
    }

    /// Records one completed request's response time.
    pub fn record(&mut self, rt: SimDuration) {
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(rt.as_micros());
        if rt > VLRT_THRESHOLD {
            self.vlrt += 1;
        }
        if rt < NORMAL_THRESHOLD {
            self.normal += 1;
        }
        self.max = self.max.max(rt);
    }

    /// Total completed requests.
    pub fn total(&self) -> u64 {
        self.count
    }

    /// Average response time in milliseconds (0 if empty).
    pub fn avg_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_micros as f64 / self.count as f64 / 1_000.0
    }

    /// Requests slower than [`VLRT_THRESHOLD`].
    pub fn vlrt_count(&self) -> u64 {
        self.vlrt
    }

    /// Requests faster than [`NORMAL_THRESHOLD`].
    pub fn normal_count(&self) -> u64 {
        self.normal
    }

    /// Percentage of VLRT requests (0–100).
    pub fn pct_vlrt(&self) -> f64 {
        percentage(self.vlrt, self.count)
    }

    /// Percentage of normal requests (0–100).
    pub fn pct_normal(&self) -> f64 {
        percentage(self.normal, self.count)
    }

    /// Largest response time observed.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ResponseStats) {
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.vlrt += other.vlrt;
        self.normal += other.normal;
        self.max = self.max.max(other.max);
    }
}

fn percentage(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// One labelled row of a Table I-style comparison.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Configuration label, e.g. `"Original total_request"`.
    pub label: String,
    /// The statistics backing the row.
    pub stats: ResponseStats,
}

impl TableRow {
    /// Creates a labelled row.
    pub fn new(label: impl Into<String>, stats: ResponseStats) -> Self {
        TableRow {
            label: label.into(),
            stats,
        }
    }
}

/// Renders rows in the paper's Table I format.
///
/// # Examples
///
/// ```
/// use mlb_metrics::summary::{render_table, ResponseStats, TableRow};
/// use mlb_simkernel::time::SimDuration;
///
/// let mut s = ResponseStats::new();
/// s.record(SimDuration::from_millis(5));
/// let out = render_table(&[TableRow::new("Current_load", s)]);
/// assert!(out.contains("Current_load"));
/// assert!(out.contains("% VLRT"));
/// ```
pub fn render_table(rows: &[TableRow]) -> String {
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(6)
        .max("Policy".len());
    let mut table = Table::new(
        "",
        " | ",
        vec![
            (Align::Left, label_w),
            (Align::Right, 14),
            (Align::Right, 18),
            (Align::Right, 22),
            (Align::Right, 22),
        ],
    );
    table.row(&[
        "Policy",
        "# Total Req",
        "Avg RT (ms)",
        "% VLRT (>1000 ms)",
        "% Normal (<10 ms)",
    ]);
    table.rule();
    for row in rows {
        table.row(&[
            row.label.clone(),
            format!("{}", row.stats.total()),
            format!("{:.2}", row.stats.avg_ms()),
            format!("{:.2}%", row.stats.pct_vlrt()),
            format!("{:.2}%", row.stats.pct_normal()),
        ]);
    }
    table.into_string()
}

impl fmt::Display for ResponseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} avg={:.2}ms vlrt={:.2}% normal={:.2}% max={}",
            self.count,
            self.avg_ms(),
            self.pct_vlrt(),
            self.pct_normal(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn thresholds_are_exclusive_like_the_paper() {
        let mut s = ResponseStats::new();
        s.record(ms(1_000)); // exactly 1000 ms is NOT a VLRT (">1000 ms")
        s.record(ms(10)); // exactly 10 ms is NOT normal ("<10 ms")
        assert_eq!(s.vlrt_count(), 0);
        assert_eq!(s.normal_count(), 0);
        s.record(ms(1_001));
        s.record(ms(9));
        assert_eq!(s.vlrt_count(), 1);
        assert_eq!(s.normal_count(), 1);
    }

    #[test]
    fn average_is_exact() {
        let mut s = ResponseStats::new();
        s.record(SimDuration::from_micros(1_500));
        s.record(SimDuration::from_micros(2_500));
        assert!((s.avg_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ResponseStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.avg_ms(), 0.0);
        assert_eq!(s.pct_vlrt(), 0.0);
        assert_eq!(s.pct_normal(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = ResponseStats::new();
        a.record(ms(5));
        let mut b = ResponseStats::new();
        b.record(ms(2_000));
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.vlrt_count(), 1);
        assert_eq!(a.max(), ms(2_000));
    }

    #[test]
    fn table_renders_all_columns() {
        let mut s = ResponseStats::new();
        for _ in 0..95 {
            s.record(ms(5));
        }
        for _ in 0..5 {
            s.record(ms(1_500));
        }
        let out = render_table(&[TableRow::new("Original total_request", s)]);
        assert!(out.contains("Original total_request"));
        assert!(out.contains("100")); // total requests
        assert!(out.contains("5.00%")); // vlrt pct
        assert!(out.contains("95.00%")); // normal pct
    }

    #[test]
    fn table_output_is_byte_identical_to_the_format_string_renderer() {
        // The pre-`ascii::Table` renderer, inlined as the oracle: the
        // dedupe must not move a single byte.
        let mut s = ResponseStats::new();
        for _ in 0..95 {
            s.record(ms(5));
        }
        for _ in 0..5 {
            s.record(ms(1_500));
        }
        let rows = [TableRow::new("Original total_request", s)];
        let label_w = rows[0].label.len();
        let mut expected = String::new();
        expected.push_str(&format!(
            "{:<label_w$} | {:>14} | {:>18} | {:>22} | {:>22}\n",
            "Policy", "# Total Req", "Avg RT (ms)", "% VLRT (>1000 ms)", "% Normal (<10 ms)"
        ));
        expected.push_str(&format!(
            "{}-+-{}-+-{}-+-{}-+-{}\n",
            "-".repeat(label_w),
            "-".repeat(14),
            "-".repeat(18),
            "-".repeat(22),
            "-".repeat(22)
        ));
        for row in &rows {
            expected.push_str(&format!(
                "{:<label_w$} | {:>14} | {:>18.2} | {:>21.2}% | {:>21.2}%\n",
                row.label,
                row.stats.total(),
                row.stats.avg_ms(),
                row.stats.pct_vlrt(),
                row.stats.pct_normal()
            ));
        }
        assert_eq!(render_table(&rows), expected);
    }

    #[test]
    fn display_is_compact() {
        let mut s = ResponseStats::new();
        s.record(ms(4));
        let txt = s.to_string();
        assert!(txt.contains("n=1"));
        assert!(txt.contains("avg=4.00ms"));
    }
}
