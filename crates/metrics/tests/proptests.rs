//! Property tests: counting laws of the measurement substrate.

use mlb_metrics::histogram::ResponseTimeHistogram;
use mlb_metrics::series::{WindowedCounter, WindowedSeries};
use mlb_metrics::summary::ResponseStats;
use mlb_simkernel::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// A histogram's buckets always sum to its count, and below/above any
    /// edge partition the samples.
    #[test]
    fn histogram_partitions_samples(
        samples_ms in proptest::collection::vec(0u64..20_000, 1..300),
    ) {
        let mut h = ResponseTimeHistogram::paper_buckets();
        for &ms in &samples_ms {
            h.record(SimDuration::from_millis(ms));
        }
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), samples_ms.len() as u64);
        for &edge in h.edges() {
            prop_assert_eq!(
                h.count_below(edge) + h.count_at_or_above(edge),
                h.count()
            );
        }
        // Exact mean check against a direct computation.
        let exact = samples_ms.iter().map(|&v| v * 1_000).sum::<u64>() / samples_ms.len() as u64;
        prop_assert_eq!(h.mean().unwrap().as_micros(), exact);
    }

    /// count_at_or_above at an edge is exactly the number of samples >=
    /// that edge.
    #[test]
    fn histogram_edge_counts_are_exact(
        samples_ms in proptest::collection::vec(0u64..10_000, 1..200),
        edge_idx in 0usize..20,
    ) {
        let mut h = ResponseTimeHistogram::paper_buckets();
        for &ms in &samples_ms {
            h.record(SimDuration::from_millis(ms));
        }
        let edge = h.edges()[edge_idx.min(h.edges().len() - 1)];
        let expected = samples_ms
            .iter()
            .filter(|&&ms| SimDuration::from_millis(ms) >= edge)
            .count() as u64;
        prop_assert_eq!(h.count_at_or_above(edge), expected);
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a_ms in proptest::collection::vec(0u64..5_000, 0..100),
        b_ms in proptest::collection::vec(0u64..5_000, 0..100),
    ) {
        let mut ha = ResponseTimeHistogram::paper_buckets();
        let mut hb = ResponseTimeHistogram::paper_buckets();
        let mut hc = ResponseTimeHistogram::paper_buckets();
        for &ms in &a_ms {
            ha.record(SimDuration::from_millis(ms));
            hc.record(SimDuration::from_millis(ms));
        }
        for &ms in &b_ms {
            hb.record(SimDuration::from_millis(ms));
            hc.record(SimDuration::from_millis(ms));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.buckets(), hc.buckets());
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.max(), hc.max());
    }

    /// Quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples_ms in proptest::collection::vec(0u64..20_000, 1..200),
    ) {
        let mut h = ResponseTimeHistogram::paper_buckets();
        for &ms in &samples_ms {
            h.record(SimDuration::from_millis(ms));
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]).unwrap() <= h.quantile(w[1]).unwrap());
        }
    }

    /// Windowed counter totals equal the sum of its windows, and every
    /// event lands in the window that contains its timestamp.
    #[test]
    fn counter_total_is_sum_of_windows(
        events_ms in proptest::collection::vec(0u64..5_000, 0..300),
    ) {
        let mut c = WindowedCounter::new(SimDuration::from_millis(50));
        for &ms in &events_ms {
            c.incr(SimTime::from_millis(ms));
        }
        prop_assert_eq!(c.counts().iter().sum::<u64>(), events_ms.len() as u64);
        prop_assert_eq!(c.total(), events_ms.len() as u64);
        for &ms in &events_ms {
            prop_assert!(c.count_at(SimTime::from_millis(ms)) > 0);
        }
    }

    /// WindowedSeries per-window count/sum agree with a direct grouping.
    #[test]
    fn series_aggregates_match_reference(
        samples in proptest::collection::vec((0u64..2_000, -100i32..100), 1..200),
    ) {
        let window = SimDuration::from_millis(50);
        let mut s = WindowedSeries::new(window);
        let mut sums: std::collections::HashMap<usize, (u64, f64)> = std::collections::HashMap::new();
        for &(ms, v) in &samples {
            s.record(SimTime::from_millis(ms), f64::from(v));
            let idx = (ms * 1_000 / window.as_micros()) as usize;
            let e = sums.entry(idx).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += f64::from(v);
        }
        for (idx, (count, sum)) in sums {
            let w = &s.windows()[idx];
            prop_assert_eq!(w.count, count);
            prop_assert!((w.sum - sum).abs() < 1e-9);
        }
        prop_assert_eq!(s.sample_count(), samples.len() as u64);
    }

    /// ResponseStats percentages always lie in [0, 100] and are consistent
    /// with its counters.
    #[test]
    fn response_stats_percentages_consistent(
        samples_ms in proptest::collection::vec(0u64..5_000, 1..300),
    ) {
        let mut st = ResponseStats::new();
        for &ms in &samples_ms {
            st.record(SimDuration::from_millis(ms));
        }
        prop_assert_eq!(st.total(), samples_ms.len() as u64);
        prop_assert!((0.0..=100.0).contains(&st.pct_vlrt()));
        prop_assert!((0.0..=100.0).contains(&st.pct_normal()));
        let vlrt = samples_ms.iter().filter(|&&ms| ms > 1_000).count() as u64;
        let normal = samples_ms.iter().filter(|&&ms| ms < 10).count() as u64;
        prop_assert_eq!(st.vlrt_count(), vlrt);
        prop_assert_eq!(st.normal_count(), normal);
    }

    /// Merging stats equals recording the concatenation.
    #[test]
    fn response_stats_merge_is_concat(
        a_ms in proptest::collection::vec(0u64..3_000, 0..100),
        b_ms in proptest::collection::vec(0u64..3_000, 0..100),
    ) {
        let mut sa = ResponseStats::new();
        let mut sb = ResponseStats::new();
        let mut sc = ResponseStats::new();
        for &ms in &a_ms {
            sa.record(SimDuration::from_millis(ms));
            sc.record(SimDuration::from_millis(ms));
        }
        for &ms in &b_ms {
            sb.record(SimDuration::from_millis(ms));
            sc.record(SimDuration::from_millis(ms));
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.total(), sc.total());
        prop_assert_eq!(sa.vlrt_count(), sc.vlrt_count());
        prop_assert_eq!(sa.normal_count(), sc.normal_count());
        prop_assert!((sa.avg_ms() - sc.avg_ms()).abs() < 1e-9);
    }
}
