//! The pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with
//! **deterministic FIFO tie-breaking**: events scheduled for the same
//! instant pop in the order they were pushed. That property is what makes
//! whole-simulation runs bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of pending events.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::queue::EventQueue;
/// use mlb_simkernel::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(5), "late");
/// q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(5), "late-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed_total: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed_total: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events before
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            pushed_total: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed_total += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (a cheap progress metric).
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_stay_fifo_per_instant() {
        let mut q = EventQueue::new();
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        q.push(b, "b0");
        q.push(a, "a0");
        q.push(b, "b1");
        q.push(a, "a1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a0", "a1", "b0", "b1"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO + SimDuration::from_micros(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed_total(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(SimTime::ZERO, 7u8);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 7u8)));
    }
}
