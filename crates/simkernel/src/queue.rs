//! The pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with
//! **deterministic FIFO tie-breaking**: events scheduled for the same
//! instant pop in the order they were pushed. That property is what makes
//! whole-simulation runs bit-for-bit reproducible.
//!
//! Two interchangeable backends implement the queue ([`QueueKind`]):
//!
//! * [`QueueKind::Wheel`] (the default) — a hierarchical timer wheel
//!   (calendar queue) with [`LEVELS`] levels of [`SLOTS`] slots each,
//!   `SLOT_BITS` bits of integer-µs time per level, plus an unsorted
//!   overflow list for events more than `2^(LEVELS·SLOT_BITS)` µs
//!   (≈ 19 hours) past the wheel origin. Push and pop are O(1) amortized,
//!   independent of the number of pending events.
//! * [`QueueKind::Heap`] — the original `BinaryHeap` implementation,
//!   O(log n) per operation. Kept as the reference model: the
//!   differential property tests drive both backends with identical
//!   schedules and assert identical pop sequences, and the scale-sweep
//!   bench uses it as the baseline the wheel is measured against.
//!
//! Both backends order events by `(time, seq)` where `seq` is a
//! per-queue monotone push counter, so their pop sequences are equal by
//! construction — the wheel just reaches the next event without paying a
//! comparison-sort.
//!
//! # Examples
//!
//! ```
//! use mlb_simkernel::queue::EventQueue;
//! use mlb_simkernel::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(5), "late");
//! q.push(SimTime::from_millis(1), "early");
//! q.push(SimTime::from_millis(5), "late-second");
//!
//! assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
//! assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late")));
//! assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late-second")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Bits of time resolved per wheel level.
pub const SLOT_BITS: u32 = 6;
/// Slots per wheel level (`2^SLOT_BITS`).
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; together they cover `2^(LEVELS·SLOT_BITS)` µs
/// (≈ 19.1 hours) beyond the wheel origin before the overflow list kicks in.
pub const LEVELS: usize = 6;
/// Cap on the cursor capacity reserved by [`EventQueue::with_capacity`]:
/// the cursor only ever holds the events of a handful of instants, so
/// pre-sizing it to the whole expected in-flight population would waste
/// memory without saving a single reallocation.
const CURSOR_PRESIZE_CAP: usize = 4_096;

/// Which backend an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Hierarchical timer wheel; O(1) amortized push/pop. The default.
    #[default]
    Wheel,
    /// `BinaryHeap` reference implementation; O(log n) push/pop.
    Heap,
}

/// Structural counters of the timer-wheel backend, maintained on every
/// push/advance. All values are pure functions of the push/pop history
/// (never of wall time or addresses), so for a fixed seed they are
/// bit-identical run to run — the self-profiler exports them verbatim
/// under the deterministic half of the `prof.*` namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Cascade operations: buckets taken apart because `base` entered
    /// their window (the per-level drains of the wheel's `advance`).
    pub cascades: u64,
    /// Entries migrated to a lower level (or the cursor) by cascades.
    pub cascade_entries: u64,
    /// Level-0 jumps: `base` advanced within its 64-µs window straight
    /// onto an occupied slot.
    pub level0_jumps: u64,
    /// Higher-level jumps: `base` rebased onto the nearest occupied slot
    /// of levels 1+.
    pub level_jumps: u64,
    /// Overflow rebases: everything pending sat beyond the wheel span
    /// and the origin was reset onto the overflow minimum.
    pub overflow_rebases: u64,
    /// Entries that went to the unsorted overflow list on push or
    /// re-place.
    pub overflow_pushes: u64,
    /// Ready-queue inserts that appended at the back (the hot
    /// schedule-at-now case).
    pub cursor_appends: u64,
    /// Ready-queue inserts that needed a sorted (binary-search) insert.
    pub cursor_sorted_inserts: u64,
    /// Longest single slot bucket drained by a cascade or level-0 jump —
    /// the wheel's analog of a slot-scan length.
    pub max_bucket_len: u64,
}

/// A time-ordered queue of pending events.
#[derive(Debug)]
pub struct EventQueue<E> {
    imp: QueueImpl<E>,
    next_seq: u64,
    pushed_total: u64,
}

#[derive(Debug)]
enum QueueImpl<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One pending event inside the wheel backend. `time` is raw integer µs —
/// slot placement is bit arithmetic on it.
#[derive(Debug)]
struct WheelEntry<E> {
    // simlint::unit(us)
    time: u64,
    seq: u64,
    event: E,
}

/// All events of one instant, drained out of the queue in one touch by
/// [`EventQueue::drain_instant`].
///
/// The driver consumes events with [`next_event`](InstantBatch::next_event)
/// and, if the model halts mid-batch, hands the unconsumed tail back with
/// [`EventQueue::restore`] so halt semantics match the one-pop-at-a-time
/// loop exactly. The batch keeps its allocation across drains.
#[derive(Debug)]
pub struct InstantBatch<E> {
    time: SimTime,
    entries: VecDeque<(u64, E)>,
}

impl<E> InstantBatch<E> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        InstantBatch {
            time: SimTime::ZERO,
            entries: VecDeque::new(),
        }
    }

    /// The instant the current batch was drained at.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Takes the next event of the batch, in FIFO (push) order.
    pub fn next_event(&mut self) -> Option<E> {
        self.entries.pop_front().map(|(_, e)| e)
    }

    /// Number of events not yet consumed. Together with
    /// [`EventQueue::len`] this reconstructs the exact pending count the
    /// one-pop-at-a-time loop would report mid-instant.
    pub fn remaining(&self) -> usize {
        self.entries.len()
    }
}

impl<E> Default for InstantBatch<E> {
    fn default() -> Self {
        InstantBatch::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (wheel) backend.
    pub fn new() -> Self {
        EventQueue::with_capacity_and_kind(0, QueueKind::Wheel)
    }

    /// Creates an empty queue with room for `capacity` events before
    /// reallocating (for the wheel backend the cursor reservation is
    /// capped; slots grow on demand).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue::with_capacity_and_kind(capacity, QueueKind::Wheel)
    }

    /// Creates an empty queue on the given backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue::with_capacity_and_kind(0, kind)
    }

    /// Creates an empty queue on the given backend, pre-sized for
    /// `capacity` pending events.
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::Wheel => QueueImpl::Wheel(Wheel::new(capacity)),
            QueueKind::Heap => QueueImpl::Heap(BinaryHeap::with_capacity(capacity)),
        };
        EventQueue {
            imp,
            next_seq: 0,
            pushed_total: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.imp {
            QueueImpl::Wheel(_) => QueueKind::Wheel,
            QueueImpl::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed_total += 1;
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.push(WheelEntry {
                time: time.as_micros(),
                seq,
                event,
            }),
            QueueImpl::Heap(h) => h.push(Entry { time, seq, event }),
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.pop().map(|e| (SimTime::from_micros(e.time), e.event)),
            QueueImpl::Heap(h) => h.pop().map(|e| (e.time, e.event)),
        }
    }

    /// Drains **all** events of the earliest pending instant into `batch`
    /// (replacing its previous contents) and returns that instant, or
    /// `None` if the queue is empty. Events come out in FIFO (push) order.
    ///
    /// This is the driver's fast path: one queue touch per instant instead
    /// of one per event. Events pushed *at* the drained instant while the
    /// batch is being processed stay in the queue and come out in a
    /// subsequent drain — exactly the order a pop-at-a-time loop yields,
    /// because their `seq` is larger than every batched event's.
    pub fn drain_instant(&mut self, batch: &mut InstantBatch<E>) -> Option<SimTime> {
        batch.entries.clear();
        let time = match &mut self.imp {
            QueueImpl::Wheel(w) => SimTime::from_micros(w.drain_instant(&mut batch.entries)?),
            QueueImpl::Heap(h) => {
                let time = h.peek()?.time;
                while h.peek().is_some_and(|e| e.time == time) {
                    if let Some(e) = h.pop() {
                        batch.entries.push_back((e.seq, e.event));
                    }
                }
                time
            }
        };
        batch.time = time;
        Some(time)
    }

    /// Puts the unconsumed tail of `batch` back into the queue, preserving
    /// the original sequence numbers (so a later drain yields the exact
    /// order a pop-at-a-time loop would have). Used when the model halts
    /// mid-instant.
    pub fn restore(&mut self, batch: &mut InstantBatch<E>) {
        let time = batch.time;
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.restore(time.as_micros(), batch.entries.drain(..)),
            QueueImpl::Heap(h) => {
                for (seq, event) in batch.entries.drain(..) {
                    h.push(Entry { time, seq, event });
                }
            }
        }
    }

    /// The timestamp of the earliest pending event, if any. (`&mut`
    /// because the wheel backend advances its origin lazily: locating the
    /// next event may cascade slot buckets.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.peek_time().map(SimTime::from_micros),
            QueueImpl::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Wheel(w) => w.len,
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (a cheap progress metric).
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// The wheel backend's structural counters, or `None` on the heap.
    pub fn wheel_stats(&self) -> Option<WheelStats> {
        match &self.imp {
            QueueImpl::Wheel(w) => Some(w.stats),
            QueueImpl::Heap(_) => None,
        }
    }

    /// Current occupied-slot count per wheel level (popcount of the
    /// occupancy bitmaps), or `None` on the heap backend.
    pub fn wheel_occupancy(&self) -> Option<[u32; LEVELS]> {
        match &self.imp {
            QueueImpl::Wheel(w) => {
                let mut occ = [0u32; LEVELS];
                for (level, bits) in w.occ.iter().enumerate() {
                    occ[level] = bits.count_ones();
                }
                Some(occ)
            }
            QueueImpl::Heap(_) => None,
        }
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.clear(),
            QueueImpl::Heap(h) => h.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The hierarchical timer wheel backend.
///
/// Layout and invariants (`base` is the wheel origin, in µs):
///
/// * **base** — the wheel origin: starts at 0 and advances **lazily**,
///   only when the consumer needs the next event (`pop`, `peek_time`,
///   `drain_instant`) and the ready queue is empty. It never moves past a
///   pending event, so it tracks the simulation's "now". Keeping pushes
///   independent of `base` movement is what makes bulk out-of-order
///   fills (e.g. staggering millions of initial client timers) O(1) per
///   push: every push later than `base` files into a slot; an eager
///   origin pinned to the first push would instead stream every earlier
///   event through the sorted ready queue — O(n) each.
/// * **cursor** — the ready queue: events at the earliest pending
///   instant, sorted by `(time, seq)`, refilled on demand by
///   [`advance`](Wheel::advance). After a refill every cursor entry is at
///   one instant (== `base`); pushes *at or before* `base` (the
///   `Scheduler::immediately` path, and batch-restore) insert into it
///   directly, keeping it sorted.
/// * **slots** — `LEVELS × SLOTS` buckets. An event at time `t > base`
///   lives at level `ℓ = floor(log₂(t XOR base) / SLOT_BITS)`, slot index
///   `(t >> ℓ·SLOT_BITS) & (SLOTS-1)`. XOR placement means an event's
///   level-ℓ index always differs from (and, because `t > base`, exceeds)
///   `base`'s own index at that level, and all events of one instant
///   always share a bucket. Buckets accumulate strictly in `seq` order —
///   events cascade down the moment `base` enters their window, before
///   any later push can target the same bucket — so no bucket ever needs
///   sorting.
/// * **occ** — one occupancy bitmap per level; finding the next pending
///   slot is a shift + `trailing_zeros`, no slot scan.
/// * **overflow** — unsorted spill for events ≥ 2^(LEVELS·SLOT_BITS) µs
///   past `base`; rescanned (O(n), amortized across the whole span) only
///   when everything nearer has drained.
///
/// When the next event is demanded and the cursor is empty,
/// [`advance`](Wheel::advance) moves `base` forward: cascade the buckets
/// keyed at `base`'s own indices, else jump `base` to the nearest
/// occupied slot of the lowest occupied level (never overshooting a
/// pending event), else rebase onto the overflow minimum. Every cascade
/// re-places events at strictly lower levels, so the loop terminates.
#[derive(Debug)]
struct Wheel<E> {
    base: u64,
    cursor: VecDeque<WheelEntry<E>>,
    occ: [u64; LEVELS],
    slots: Vec<Vec<WheelEntry<E>>>,
    overflow: Vec<WheelEntry<E>>,
    len: usize,
    stats: WheelStats,
}

impl<E> Wheel<E> {
    fn new(capacity: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        Wheel {
            base: 0,
            cursor: VecDeque::with_capacity(capacity.min(CURSOR_PRESIZE_CAP)),
            occ: [0; LEVELS],
            slots,
            overflow: Vec::new(),
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// `base`'s own slot index at `level`.
    fn level_index(&self, level: usize) -> usize {
        ((self.base >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    fn push(&mut self, e: WheelEntry<E>) {
        self.len += 1;
        if e.time <= self.base {
            self.cursor_insert(e);
        } else {
            self.place(e);
        }
    }

    /// Refills the ready queue from the slots if it has gone empty. Every
    /// consuming operation calls this first; pushes never touch `base`.
    fn ensure_cursor(&mut self) {
        if self.cursor.is_empty() && self.len > 0 {
            self.advance();
        }
    }

    /// Sorted insert into the ready queue. The hot case — scheduling at
    /// the instant currently being processed — appends at the back.
    fn cursor_insert(&mut self, e: WheelEntry<E>) {
        let key = (e.time, e.seq);
        match self.cursor.back() {
            Some(b) if (b.time, b.seq) <= key => {
                self.stats.cursor_appends += 1;
                self.cursor.push_back(e);
            }
            _ => {
                self.stats.cursor_sorted_inserts += 1;
                let at = self.cursor.partition_point(|x| (x.time, x.seq) < key);
                self.cursor.insert(at, e);
            }
        }
    }

    /// Files an event with `time > base` into its slot (or the overflow).
    fn place(&mut self, e: WheelEntry<E>) {
        debug_assert!(e.time > self.base);
        let level = ((63 - (e.time ^ self.base).leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.stats.overflow_pushes += 1;
            self.overflow.push(e);
        } else {
            let idx = ((e.time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.occ[level] |= 1 << idx;
            self.slots[level * SLOTS + idx].push(e);
        }
    }

    fn peek_time(&mut self) -> Option<u64> {
        self.ensure_cursor();
        self.cursor.front().map(|e| e.time)
    }

    fn pop(&mut self) -> Option<WheelEntry<E>> {
        self.ensure_cursor();
        let e = self.cursor.pop_front()?;
        self.len -= 1;
        Some(e)
    }

    fn drain_instant(&mut self, out: &mut VecDeque<(u64, E)>) -> Option<u64> {
        self.ensure_cursor();
        let time = self.cursor.front()?.time;
        while self.cursor.front().is_some_and(|e| e.time == time) {
            if let Some(e) = self.cursor.pop_front() {
                self.len -= 1;
                out.push_back((e.seq, e.event));
            }
        }
        Some(time)
    }

    /// Re-inserts a drained-but-unprocessed batch tail. The tail's seqs
    /// all predate anything pushed since the drain, so the whole block
    /// belongs at the very front of the ready queue.
    // simlint::unit(us)
    fn restore(&mut self, time: u64, tail: impl DoubleEndedIterator<Item = (u64, E)>) {
        let mut restored = 0usize;
        for (seq, event) in tail.rev() {
            debug_assert!(self
                .cursor
                .front()
                .is_none_or(|f| (time, seq) < (f.time, f.seq)));
            self.cursor.push_front(WheelEntry { time, seq, event });
            restored += 1;
        }
        self.len += restored;
        if self.len == restored {
            self.base = time;
        }
    }

    fn clear(&mut self) {
        self.base = 0;
        self.cursor.clear();
        self.occ = [0; LEVELS];
        for s in &mut self.slots {
            s.clear();
        }
        self.overflow.clear();
        self.len = 0;
    }

    /// Moves `base` forward to the next pending instant and loads its
    /// events into the (empty) cursor. Called only with `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.cursor.is_empty() && self.len > 0);
        loop {
            // Cascade the buckets keyed at base's own index, highest level
            // first so entries settle through lower levels in one pass.
            // Entries landing exactly at base become the ready queue.
            for level in (1..LEVELS).rev() {
                let idx = self.level_index(level);
                if self.occ[level] & (1 << idx) != 0 {
                    self.occ[level] &= !(1 << idx);
                    let entries = std::mem::take(&mut self.slots[level * SLOTS + idx]);
                    self.stats.cascades += 1;
                    self.stats.cascade_entries += entries.len() as u64;
                    self.stats.max_bucket_len = self.stats.max_bucket_len.max(entries.len() as u64);
                    for e in entries {
                        if e.time <= self.base {
                            self.cursor.push_back(e);
                        } else {
                            self.place(e);
                        }
                    }
                }
            }
            if !self.cursor.is_empty() {
                return;
            }
            // Level 0 beats every higher level: its entries are inside
            // base's current 64-µs window, higher levels' are beyond it.
            let idx0 = self.level_index(0);
            let ahead = self.occ[0] >> idx0;
            debug_assert!(ahead & 1 == 0, "level-0 slot at base was not drained");
            if ahead != 0 {
                self.base += u64::from(ahead.trailing_zeros());
                let idx = self.level_index(0);
                self.occ[0] &= !(1 << idx);
                let mut bucket = std::mem::take(&mut self.slots[idx]);
                self.stats.level0_jumps += 1;
                self.stats.max_bucket_len = self.stats.max_bucket_len.max(bucket.len() as u64);
                // A level-0 bucket holds exactly one instant, in seq order.
                self.cursor.extend(bucket.drain(..));
                self.slots[idx] = bucket;
                return;
            }
            // Jump to the nearest occupied slot of the lowest occupied
            // level. That slot contains the global minimum (nearer slots
            // of higher levels cannot exist by XOR placement), and the
            // jump leaves base's lower bits zero, so no pending event is
            // overshot. The next iteration cascades it downward.
            if let Some(level) = (1..LEVELS).find(|&l| self.occ[l] != 0) {
                let idx = self.level_index(level);
                let ahead = self.occ[level] >> idx;
                debug_assert!(ahead != 0, "occupied slot behind base at level {level}");
                let shift = SLOT_BITS * level as u32;
                self.base = ((self.base >> shift) + u64::from(ahead.trailing_zeros())) << shift;
                self.stats.level_jumps += 1;
                continue;
            }
            // Everything pending is in the overflow: rebase onto its
            // minimum and re-place. Entries still ≥ 2^36 µs out simply
            // return to the overflow.
            debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing pending");
            self.stats.overflow_rebases += 1;
            let min = self
                .overflow
                .iter()
                .map(|e| e.time)
                .min()
                .unwrap_or(self.base);
            self.base = min;
            let entries = std::mem::take(&mut self.overflow);
            for e in entries {
                if e.time <= self.base {
                    self.cursor.push_back(e);
                } else {
                    self.place(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Runs a queue test against both backends.
    fn on_both(f: impl Fn(QueueKind)) {
        f(QueueKind::Wheel);
        f(QueueKind::Heap);
    }

    #[test]
    fn default_backend_is_the_wheel() {
        let q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::Wheel);
        let q: EventQueue<u8> = EventQueue::with_kind(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_micros(30), 3);
            q.push(SimTime::from_micros(10), 1);
            q.push(SimTime::from_micros(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn fifo_among_equal_times() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn interleaved_pushes_stay_fifo_per_instant() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let a = SimTime::from_millis(1);
            let b = SimTime::from_millis(2);
            q.push(b, "b0");
            q.push(a, "a0");
            q.push(b, "b1");
            q.push(a, "a1");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!["a0", "a1", "b0", "b1"]);
        });
    }

    #[test]
    fn peek_time_matches_next_pop() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_secs(2), ());
            q.push(SimTime::from_secs(1), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(1));
        });
    }

    #[test]
    fn len_and_counters() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            q.push(SimTime::ZERO, ());
            q.push(SimTime::ZERO + SimDuration::from_micros(1), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.pushed_total(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
            assert_eq!(q.pushed_total(), 2);
            q.clear();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(SimTime::ZERO, 7u8);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 7u8)));
    }

    #[test]
    fn far_future_events_cross_the_overflow() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            // ~27.8 h and ~55.6 h: both far beyond the 19.1 h wheel span.
            q.push(SimTime::from_secs(200_000), "far2");
            q.push(SimTime::from_secs(100_000), "far1");
            q.push(SimTime::from_micros(3), "near");
            assert_eq!(q.pop(), Some((SimTime::from_micros(3), "near")));
            assert_eq!(q.pop(), Some((SimTime::from_secs(100_000), "far1")));
            assert_eq!(q.pop(), Some((SimTime::from_secs(200_000), "far2")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn pushing_at_the_current_instant_stays_fifo_after_pop() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(7);
            q.push(t, 0);
            q.push(t + SimDuration::from_millis(1), 9);
            assert_eq!(q.pop(), Some((t, 0)));
            // Model schedules "immediately" while handling the popped event.
            q.push(t, 1);
            q.push(t, 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 9]);
        });
    }

    #[test]
    fn drain_instant_batches_one_instant_in_fifo_order() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let a = SimTime::from_millis(1);
            let b = SimTime::from_millis(2);
            q.push(b, 20);
            q.push(a, 10);
            q.push(a, 11);
            let mut batch = InstantBatch::new();
            assert_eq!(q.drain_instant(&mut batch), Some(a));
            assert_eq!(batch.time(), a);
            assert_eq!(batch.remaining(), 2);
            assert_eq!(batch.next_event(), Some(10));
            assert_eq!(batch.next_event(), Some(11));
            assert_eq!(batch.next_event(), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.drain_instant(&mut batch), Some(b));
            assert_eq!(batch.next_event(), Some(20));
            assert_eq!(q.drain_instant(&mut batch), None);
        });
    }

    #[test]
    fn restore_puts_the_unconsumed_tail_back_in_order() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(3);
            for i in 0..4 {
                q.push(t, i);
            }
            q.push(t + SimDuration::from_millis(1), 99);
            let mut batch = InstantBatch::new();
            assert_eq!(q.drain_instant(&mut batch), Some(t));
            assert_eq!(batch.next_event(), Some(0));
            // Halt after handling event 0; events pushed meanwhile must
            // still pop after the restored tail.
            q.push(t, 4);
            q.restore(&mut batch);
            assert_eq!(q.len(), 5);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3, 4, 99]);
        });
    }

    #[test]
    fn drain_after_same_instant_push_yields_the_newcomers() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(5);
            q.push(t, 0);
            q.push(SimTime::from_millis(6), 9);
            let mut batch = InstantBatch::new();
            assert_eq!(q.drain_instant(&mut batch), Some(t));
            assert_eq!(batch.next_event(), Some(0));
            // The model schedules at the instant being processed: a second
            // drain must yield it before the later instant.
            q.push(t, 1);
            assert_eq!(q.drain_instant(&mut batch), Some(t));
            assert_eq!(batch.next_event(), Some(1));
            assert_eq!(q.drain_instant(&mut batch), Some(SimTime::from_millis(6)));
            assert_eq!(batch.next_event(), Some(9));
        });
    }

    /// A randomized mirror check against a sorted reference, exercising
    /// slot cascades and wheel jumps across several levels. (The heavier
    /// differential suite lives in `tests/proptests.rs`.)
    #[test]
    fn wheel_matches_sorted_reference_on_a_mixed_schedule() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        let mut expected: Vec<(u64, u64)> = Vec::new();
        // Deterministic pseudo-random times spanning all wheel levels.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for seq in 0..4_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = match seq % 7 {
                0 => x % 64,             // level 0
                1 => x % 4_096,          // level 1
                2 => x % 100_000,        // levels 2-3
                3 => x % 80_000_000_000, // overflow territory
                _ => x % 10_000_000,     // level 4
            };
            q.push(SimTime::from_micros(t), seq);
            expected.push((t, seq));
        }
        expected.sort();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_micros(), e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn wheel_stats_are_deterministic_and_structural() {
        let run = || {
            let mut q = EventQueue::with_kind(QueueKind::Wheel);
            // Spread across levels plus the overflow, then drain fully.
            for i in 0..500u64 {
                let t = (i * 7919) % 20_000_000;
                q.push(SimTime::from_micros(t), i);
            }
            q.push(SimTime::from_secs(100_000), 999); // beyond the wheel span
            while q.pop().is_some() {}
            q.wheel_stats().expect("wheel backend carries stats")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical push histories must yield identical stats");
        assert!(a.cascades > 0, "multi-level schedule must cascade");
        assert!(a.level0_jumps + a.level_jumps > 0);
        assert_eq!(a.overflow_pushes, 1);
        assert_eq!(a.overflow_rebases, 1);
        assert!(a.max_bucket_len >= 1);
    }

    #[test]
    fn heap_backend_has_no_wheel_stats() {
        let mut q = EventQueue::with_kind(QueueKind::Heap);
        q.push(SimTime::ZERO, ());
        assert_eq!(q.wheel_stats(), None);
        assert_eq!(q.wheel_occupancy(), None);
    }

    #[test]
    fn wheel_occupancy_counts_occupied_slots() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.wheel_occupancy(), Some([0; LEVELS]));
        // Three distinct level-0 slots ahead of base.
        q.push(SimTime::from_micros(1), 0);
        q.push(SimTime::from_micros(2), 1);
        q.push(SimTime::from_micros(3), 2);
        let occ = q.wheel_occupancy().expect("wheel backend");
        assert_eq!(occ[0], 3);
        assert_eq!(occ[1..].iter().sum::<u32>(), 0);
    }
}
