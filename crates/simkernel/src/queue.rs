//! The pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with
//! **deterministic FIFO tie-breaking**: events scheduled for the same
//! instant pop in the order they were pushed. That property is what makes
//! whole-simulation runs bit-for-bit reproducible.
//!
//! Two interchangeable backends implement the queue ([`QueueKind`]):
//!
//! * [`QueueKind::Wheel`] (the default) — a hierarchical timer wheel
//!   (calendar queue) with [`LEVELS`] levels of [`SLOTS`] slots each,
//!   `SLOT_BITS` bits of integer-µs time per level, plus an unsorted
//!   overflow list for events more than `2^(LEVELS·SLOT_BITS)` µs
//!   (≈ 19 hours) past the wheel origin. Push and pop are O(1) amortized,
//!   independent of the number of pending events.
//! * [`QueueKind::Heap`] — the original `BinaryHeap` implementation,
//!   O(log n) per operation. Kept as the reference model: the
//!   differential property tests drive both backends with identical
//!   schedules and assert identical pop sequences, and the scale-sweep
//!   bench uses it as the baseline the wheel is measured against.
//!
//! Both backends order events by `(time, seq)` where `seq` is a
//! per-queue monotone push counter, so their pop sequences are equal by
//! construction — the wheel just reaches the next event without paying a
//! comparison-sort.
//!
//! # Examples
//!
//! ```
//! use mlb_simkernel::queue::EventQueue;
//! use mlb_simkernel::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(5), "late");
//! q.push(SimTime::from_millis(1), "early");
//! q.push(SimTime::from_millis(5), "late-second");
//!
//! assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
//! assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late")));
//! assert_eq!(q.pop(), Some((SimTime::from_millis(5), "late-second")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Bits of time resolved per wheel level.
pub const SLOT_BITS: u32 = 6;
/// Slots per wheel level (`2^SLOT_BITS`).
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; together they cover `2^(LEVELS·SLOT_BITS)` µs
/// (≈ 19.1 hours) beyond the wheel origin before the overflow list kicks in.
pub const LEVELS: usize = 6;
/// Cap on the cursor capacity reserved by [`EventQueue::with_capacity`]:
/// the cursor only ever holds the events of a handful of instants, so
/// pre-sizing it to the whole expected in-flight population would waste
/// memory without saving a single reallocation.
const CURSOR_PRESIZE_CAP: usize = 4_096;

/// Which backend an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Hierarchical timer wheel; O(1) amortized push/pop. The default.
    #[default]
    Wheel,
    /// `BinaryHeap` reference implementation; O(log n) push/pop.
    Heap,
}

/// Structural counters of the timer-wheel backend, maintained on every
/// push/advance. All values are pure functions of the push/pop history
/// (never of wall time or addresses), so for a fixed seed they are
/// bit-identical run to run — the self-profiler exports them verbatim
/// under the deterministic half of the `prof.*` namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Cascade operations: buckets taken apart because `base` entered
    /// their window (the per-level drains of the wheel's `advance`).
    pub cascades: u64,
    /// Entries migrated to a lower level (or the cursor) by cascades.
    pub cascade_entries: u64,
    /// Level-0 jumps: `base` advanced within its 64-µs window straight
    /// onto an occupied slot.
    pub level0_jumps: u64,
    /// Higher-level jumps: `base` rebased onto the nearest occupied slot
    /// of levels 1+.
    pub level_jumps: u64,
    /// Overflow rebases: everything pending sat beyond the wheel span
    /// and the origin was reset onto the overflow minimum.
    pub overflow_rebases: u64,
    /// Entries that went to the unsorted overflow list on push or
    /// re-place.
    pub overflow_pushes: u64,
    /// Ready-queue inserts that appended at the back (the hot
    /// schedule-at-now case).
    pub cursor_appends: u64,
    /// Ready-queue inserts that needed a sorted (binary-search) insert.
    pub cursor_sorted_inserts: u64,
    /// Longest single slot bucket drained by a cascade or level-0 jump —
    /// the wheel's analog of a slot-scan length.
    pub max_bucket_len: u64,
    /// Fresh node-arena slots grown (hot+cold arrays extended). Flat
    /// after warmup when the free list recycles everything — the
    /// allocation-free-steady-state invariant the bench gates on.
    pub node_allocs: u64,
    /// Node-arena slots recycled off the free list instead of grown.
    pub node_reuses: u64,
    /// Peak number of live arena nodes (the high-water mark the hot/cold
    /// arrays actually grew to).
    pub node_peak_live: u64,
}

/// A time-ordered queue of pending events.
#[derive(Debug)]
pub struct EventQueue<E> {
    imp: QueueImpl<E>,
    next_seq: u64,
    pushed_total: u64,
}

#[derive(Debug)]
enum QueueImpl<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One pending event inside the wheel backend. `time` is raw integer µs —
/// slot placement is bit arithmetic on it.
#[derive(Debug)]
struct WheelEntry<E> {
    // simlint::unit(us)
    time: u64,
    seq: u64,
    event: E,
}

/// All events of one instant, drained out of the queue in one touch by
/// [`EventQueue::drain_instant`].
///
/// The driver consumes events with [`next_event`](InstantBatch::next_event)
/// and, if the model halts mid-batch, hands the unconsumed tail back with
/// [`EventQueue::restore`] so halt semantics match the one-pop-at-a-time
/// loop exactly. The batch keeps its allocation across drains.
#[derive(Debug)]
pub struct InstantBatch<E> {
    time: SimTime,
    entries: VecDeque<(u64, E)>,
}

impl<E> InstantBatch<E> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        InstantBatch {
            time: SimTime::ZERO,
            entries: VecDeque::new(),
        }
    }

    /// The instant the current batch was drained at.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Takes the next event of the batch, in FIFO (push) order.
    pub fn next_event(&mut self) -> Option<E> {
        self.entries.pop_front().map(|(_, e)| e)
    }

    /// Number of events not yet consumed. Together with
    /// [`EventQueue::len`] this reconstructs the exact pending count the
    /// one-pop-at-a-time loop would report mid-instant.
    pub fn remaining(&self) -> usize {
        self.entries.len()
    }
}

impl<E> Default for InstantBatch<E> {
    fn default() -> Self {
        InstantBatch::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (wheel) backend.
    pub fn new() -> Self {
        EventQueue::with_capacity_and_kind(0, QueueKind::Wheel)
    }

    /// Creates an empty queue with room for `capacity` events before
    /// reallocating (for the wheel backend this pre-sizes the packed
    /// node arena; the cursor reservation is capped).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue::with_capacity_and_kind(capacity, QueueKind::Wheel)
    }

    /// Creates an empty queue on the given backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue::with_capacity_and_kind(0, kind)
    }

    /// Creates an empty queue on the given backend, pre-sized for
    /// `capacity` pending events.
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::Wheel => QueueImpl::Wheel(Wheel::new(capacity)),
            QueueKind::Heap => QueueImpl::Heap(BinaryHeap::with_capacity(capacity)),
        };
        EventQueue {
            imp,
            next_seq: 0,
            pushed_total: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.imp {
            QueueImpl::Wheel(_) => QueueKind::Wheel,
            QueueImpl::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed_total += 1;
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.push(WheelEntry {
                time: time.as_micros(),
                seq,
                event,
            }),
            QueueImpl::Heap(h) => h.push(Entry { time, seq, event }),
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.pop().map(|e| (SimTime::from_micros(e.time), e.event)),
            QueueImpl::Heap(h) => h.pop().map(|e| (e.time, e.event)),
        }
    }

    /// Drains **all** events of the earliest pending instant into `batch`
    /// (replacing its previous contents) and returns that instant, or
    /// `None` if the queue is empty. Events come out in FIFO (push) order.
    ///
    /// This is the driver's fast path: one queue touch per instant instead
    /// of one per event. Events pushed *at* the drained instant while the
    /// batch is being processed stay in the queue and come out in a
    /// subsequent drain — exactly the order a pop-at-a-time loop yields,
    /// because their `seq` is larger than every batched event's.
    pub fn drain_instant(&mut self, batch: &mut InstantBatch<E>) -> Option<SimTime> {
        batch.entries.clear();
        let time = match &mut self.imp {
            QueueImpl::Wheel(w) => SimTime::from_micros(w.drain_instant(&mut batch.entries)?),
            QueueImpl::Heap(h) => {
                let time = h.peek()?.time;
                while h.peek().is_some_and(|e| e.time == time) {
                    if let Some(e) = h.pop() {
                        batch.entries.push_back((e.seq, e.event));
                    }
                }
                time
            }
        };
        batch.time = time;
        Some(time)
    }

    /// Puts the unconsumed tail of `batch` back into the queue, preserving
    /// the original sequence numbers (so a later drain yields the exact
    /// order a pop-at-a-time loop would have). Used when the model halts
    /// mid-instant.
    pub fn restore(&mut self, batch: &mut InstantBatch<E>) {
        let time = batch.time;
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.restore(time.as_micros(), batch.entries.drain(..)),
            QueueImpl::Heap(h) => {
                for (seq, event) in batch.entries.drain(..) {
                    h.push(Entry { time, seq, event });
                }
            }
        }
    }

    /// The timestamp of the earliest pending event, if any. (`&mut`
    /// because the wheel backend advances its origin lazily: locating the
    /// next event may cascade slot buckets.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.peek_time().map(SimTime::from_micros),
            QueueImpl::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            QueueImpl::Wheel(w) => w.len,
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (a cheap progress metric).
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// The wheel backend's structural counters, or `None` on the heap.
    pub fn wheel_stats(&self) -> Option<WheelStats> {
        match &self.imp {
            QueueImpl::Wheel(w) => Some(w.stats),
            QueueImpl::Heap(_) => None,
        }
    }

    /// Current occupied-slot count per wheel level (popcount of the
    /// occupancy bitmaps), or `None` on the heap backend.
    pub fn wheel_occupancy(&self) -> Option<[u32; LEVELS]> {
        match &self.imp {
            QueueImpl::Wheel(w) => {
                let mut occ = [0u32; LEVELS];
                for (level, bits) in w.occ.iter().enumerate() {
                    occ[level] = bits.count_ones();
                }
                Some(occ)
            }
            QueueImpl::Heap(_) => None,
        }
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.clear(),
            QueueImpl::Heap(h) => h.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Sentinel index terminating chunk lists and the cold free list.
const NIL: u32 = u32::MAX;

/// Entries per hot chunk: with the 8-byte header this makes a chunk
/// exactly 2 KiB, so one cascade's working set — the ≤ [`SLOTS`]
/// destination tail chunks being appended to — fits comfortably in L2.
const CHUNK_CAP: usize = 85;

/// The hot words of one pending event: the `(time, seq)` sort key a
/// cascade compares, plus the index of the payload in the cold arena.
/// 24 bytes, vs. dragging the full event through cache; the payload is
/// only touched when the entry actually reaches the ready queue.
#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    // simlint::unit(us)
    time: u64,
    seq: u64,
    cold: u32,
}

impl ChunkEntry {
    const ZERO: ChunkEntry = ChunkEntry {
        time: 0,
        seq: 0,
        cold: NIL,
    };
}

/// One 2 KiB block of a bucket's hot entries. Buckets are singly-linked
/// chunk lists with a tail pointer: appends fill the tail chunk
/// sequentially, cascades scan chunks front to back — so the hot path
/// streams over packed arrays instead of chasing one pointer per event,
/// and recycling whole chunks (not nodes) keeps bucket memory contiguous
/// no matter how scrambled the churn order gets.
#[derive(Debug, Clone)]
struct Chunk {
    /// Next chunk of the same bucket, or the free-list link.
    next: u32,
    /// Occupied prefix of `entries`.
    len: u32,
    entries: [ChunkEntry; CHUNK_CAP],
}

impl Chunk {
    fn new() -> Self {
        Chunk {
            next: NIL,
            len: 0,
            entries: [ChunkEntry::ZERO; CHUNK_CAP],
        }
    }
}

/// The hierarchical timer wheel backend, with packed struct-of-arrays
/// node storage.
///
/// Layout and invariants (`base` is the wheel origin, in µs):
///
/// * **base** — the wheel origin: starts at 0 and advances **lazily**,
///   only when the consumer needs the next event (`pop`, `peek_time`,
///   `drain_instant`) and the ready queue is empty. It never moves past a
///   pending event, so it tracks the simulation's "now". Keeping pushes
///   independent of `base` movement is what makes bulk out-of-order
///   fills (e.g. staggering millions of initial client timers) O(1) per
///   push: every push later than `base` files into a slot; an eager
///   origin pinned to the first push would instead stream every earlier
///   event through the sorted ready queue — O(n) each.
/// * **chunks / cold** — the packed struct-of-arrays event store.
///   `chunks` is the hot half: 2 KiB blocks of `(time, seq, cold-index)`
///   entries, the only bytes cascades and jumps ever scan. `cold[i]` is
///   the payload arena: an event's payload is written there once on push
///   and read once when the entry reaches the ready queue; in between it
///   never moves, no matter how many levels the hot entry cascades
///   through. Freed cold slots are recycled through a LIFO free stack,
///   freed chunks through a free list, so after the in-flight population
///   peaks neither array grows again — the allocation-free steady state.
/// * **cursor** — the ready queue: events at the earliest pending
///   instant, sorted by `(time, seq)`, refilled on demand by
///   [`advance`](Wheel::advance). After a refill every cursor entry is at
///   one instant (== `base`); pushes *at or before* `base` (the
///   `Scheduler::immediately` path, and batch-restore) insert into it
///   directly, keeping it sorted. Cursor entries carry their payload
///   (their arena slots are already freed).
/// * **heads / tails** — `LEVELS × SLOTS` buckets, each a singly-linked
///   chunk list with a tail pointer for O(1) seq-order append. An event
///   at time `t > base` lives at level
///   `ℓ = floor(log₂(t XOR base) / SLOT_BITS)`, slot index
///   `(t >> ℓ·SLOT_BITS) & (SLOTS-1)`. XOR placement means an event's
///   level-ℓ index always differs from (and, because `t > base`, exceeds)
///   `base`'s own index at that level, and all events of one instant
///   always share a bucket. Buckets accumulate strictly in `seq` order —
///   events cascade down the moment `base` enters their window, before
///   any later push can target the same bucket — so no bucket ever needs
///   sorting. Two earlier designs melted down at multi-million queue
///   depths: per-bucket `Vec`s of full events re-moved 40-byte payloads
///   through doubling multi-MB reallocations on every cascade, and
///   per-node intrusive lists decayed into one cache+TLB miss per entry
///   once free-list churn scrambled node order. Chunks keep cascade
///   reads sequential and confine writes to ≤ [`SLOTS`] resident tail
///   chunks, at a fixed 24 bytes per entry moved.
/// * **occ** — one occupancy bitmap per level; finding the next pending
///   slot is a shift + `trailing_zeros`, no slot scan.
/// * **overflow** — spill chunk list for events ≥ 2^(LEVELS·SLOT_BITS) µs
///   past `base`; rescanned (O(n), amortized across the whole span) only
///   when everything nearer has drained.
///
/// When the next event is demanded and the cursor is empty,
/// [`advance`](Wheel::advance) moves `base` forward: cascade the buckets
/// keyed at `base`'s own indices, else jump `base` to the nearest
/// occupied slot of the lowest occupied level (never overshooting a
/// pending event), else rebase onto the overflow minimum. Every cascade
/// re-places events at strictly lower levels, so the loop terminates.
#[derive(Debug)]
struct Wheel<E> {
    base: u64,
    cursor: VecDeque<WheelEntry<E>>,
    occ: [u64; LEVELS],
    heads: Vec<u32>,
    tails: Vec<u32>,
    overflow_head: u32,
    overflow_tail: u32,
    chunks: Vec<Chunk>,
    chunk_free: u32,
    cold: Vec<Option<E>>,
    cold_free: Vec<u32>,
    live_nodes: u64,
    len: usize,
    stats: WheelStats,
}

impl<E> Wheel<E> {
    fn new(capacity: usize) -> Self {
        Wheel {
            base: 0,
            cursor: VecDeque::with_capacity(capacity.min(CURSOR_PRESIZE_CAP)),
            occ: [0; LEVELS],
            heads: vec![NIL; LEVELS * SLOTS],
            tails: vec![NIL; LEVELS * SLOTS],
            overflow_head: NIL,
            overflow_tail: NIL,
            chunks: Vec::with_capacity(capacity.div_ceil(CHUNK_CAP)),
            chunk_free: NIL,
            cold: Vec::with_capacity(capacity),
            cold_free: Vec::new(),
            live_nodes: 0,
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// `base`'s own slot index at `level`.
    fn level_index(&self, level: usize) -> usize {
        ((self.base >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Parks `event` in the cold arena — recycling a freed slot when one
    /// is available, growing the array only when none is.
    fn alloc_cold(&mut self, event: E) -> u32 {
        let id = if let Some(id) = self.cold_free.pop() {
            self.stats.node_reuses += 1;
            self.cold[id as usize] = Some(event);
            id
        } else {
            let id = self.cold.len() as u32;
            self.stats.node_allocs += 1;
            self.cold.push(Some(event));
            id
        };
        self.live_nodes += 1;
        self.stats.node_peak_live = self.stats.node_peak_live.max(self.live_nodes);
        id
    }

    /// Retires cold slot `id` onto the free stack and returns its payload.
    fn take_cold(&mut self, id: u32) -> E {
        self.cold_free.push(id);
        self.live_nodes -= 1;
        self.cold[id as usize]
            .take()
            // INVARIANT: every live slot is allocated with a payload and
            // taken exactly once; a second take is arena corruption and
            // must abort.
            .expect("wheel cold slot taken twice")
    }

    /// A fresh (empty, detached) chunk — recycled or grown.
    fn alloc_chunk(&mut self) -> u32 {
        if self.chunk_free != NIL {
            let c = self.chunk_free;
            self.chunk_free = self.chunks[c as usize].next;
            self.chunks[c as usize].next = NIL;
            self.chunks[c as usize].len = 0;
            c
        } else {
            let c = self.chunks.len() as u32;
            self.chunks.push(Chunk::new());
            c
        }
    }

    /// Returns chunk `c` to the free list. Callers walking a chunk list
    /// must read `.next` *before* this — it becomes the free-list link.
    fn free_chunk(&mut self, c: u32) {
        self.chunks[c as usize].next = self.chunk_free;
        self.chunk_free = c;
    }

    /// Appends one hot entry to the bucket list rooted at
    /// `heads[bucket]`/`tails[bucket]` (tail append preserves seq order).
    fn bucket_push(&mut self, bucket: usize, e: ChunkEntry) {
        let mut tail = self.tails[bucket];
        if tail == NIL || self.chunks[tail as usize].len as usize == CHUNK_CAP {
            let c = self.alloc_chunk();
            if tail == NIL {
                self.heads[bucket] = c;
            } else {
                self.chunks[tail as usize].next = c;
            }
            self.tails[bucket] = c;
            tail = c;
        }
        let ch = &mut self.chunks[tail as usize];
        ch.entries[ch.len as usize] = e;
        ch.len += 1;
    }

    fn push(&mut self, e: WheelEntry<E>) {
        self.len += 1;
        if e.time <= self.base {
            self.cursor_insert(e);
        } else {
            let entry = ChunkEntry {
                time: e.time,
                seq: e.seq,
                cold: self.alloc_cold(e.event),
            };
            self.place_entry(entry);
        }
    }

    /// Refills the ready queue from the slots if it has gone empty. Every
    /// consuming operation calls this first; pushes never touch `base`.
    fn ensure_cursor(&mut self) {
        if self.cursor.is_empty() && self.len > 0 {
            self.advance();
        }
    }

    /// Sorted insert into the ready queue. The hot case — scheduling at
    /// the instant currently being processed — appends at the back.
    fn cursor_insert(&mut self, e: WheelEntry<E>) {
        let key = (e.time, e.seq);
        match self.cursor.back() {
            Some(b) if (b.time, b.seq) <= key => {
                self.stats.cursor_appends += 1;
                self.cursor.push_back(e);
            }
            _ => {
                self.stats.cursor_sorted_inserts += 1;
                let at = self.cursor.partition_point(|x| (x.time, x.seq) < key);
                self.cursor.insert(at, e);
            }
        }
    }

    /// Files a hot entry (whose time is > `base`) into its slot bucket
    /// (or the overflow list). Moves 24 bytes — the payload stays put.
    fn place_entry(&mut self, e: ChunkEntry) {
        debug_assert!(e.time > self.base);
        let level = ((63 - (e.time ^ self.base).leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.stats.overflow_pushes += 1;
            let mut tail = self.overflow_tail;
            if tail == NIL || self.chunks[tail as usize].len as usize == CHUNK_CAP {
                let c = self.alloc_chunk();
                if tail == NIL {
                    self.overflow_head = c;
                } else {
                    self.chunks[tail as usize].next = c;
                }
                self.overflow_tail = c;
                tail = c;
            }
            let ch = &mut self.chunks[tail as usize];
            ch.entries[ch.len as usize] = e;
            ch.len += 1;
        } else {
            let idx = ((e.time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.occ[level] |= 1 << idx;
            self.bucket_push(level * SLOTS + idx, e);
        }
    }

    fn peek_time(&mut self) -> Option<u64> {
        self.ensure_cursor();
        self.cursor.front().map(|e| e.time)
    }

    fn pop(&mut self) -> Option<WheelEntry<E>> {
        self.ensure_cursor();
        let e = self.cursor.pop_front()?;
        self.len -= 1;
        Some(e)
    }

    fn drain_instant(&mut self, out: &mut VecDeque<(u64, E)>) -> Option<u64> {
        self.ensure_cursor();
        let time = self.cursor.front()?.time;
        while self.cursor.front().is_some_and(|e| e.time == time) {
            if let Some(e) = self.cursor.pop_front() {
                self.len -= 1;
                out.push_back((e.seq, e.event));
            }
        }
        Some(time)
    }

    /// Re-inserts a drained-but-unprocessed batch tail. The tail's seqs
    /// all predate anything pushed since the drain, so the whole block
    /// belongs at the very front of the ready queue.
    // simlint::unit(us)
    fn restore(&mut self, time: u64, tail: impl DoubleEndedIterator<Item = (u64, E)>) {
        let mut restored = 0usize;
        for (seq, event) in tail.rev() {
            debug_assert!(self
                .cursor
                .front()
                .is_none_or(|f| (time, seq) < (f.time, f.seq)));
            self.cursor.push_front(WheelEntry { time, seq, event });
            restored += 1;
        }
        self.len += restored;
        if self.len == restored {
            self.base = time;
        }
    }

    fn clear(&mut self) {
        self.base = 0;
        self.cursor.clear();
        self.occ = [0; LEVELS];
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.overflow_head = NIL;
        self.overflow_tail = NIL;
        self.chunks.clear();
        self.chunk_free = NIL;
        self.cold.clear();
        self.cold_free.clear();
        self.live_nodes = 0;
        self.len = 0;
    }

    /// Drains the chunk list starting at `cur`: entries at or before
    /// `base` move to the cursor (payload and all), later ones re-file
    /// into lower buckets. Consumed chunks return to the free list.
    /// Returns the number of entries moved.
    fn drain_chunk_list(&mut self, mut cur: u32) -> u64 {
        let mut moved = 0u64;
        while cur != NIL {
            // Read the link first: free_chunk repurposes `next`, and
            // place_entry may recycle chunks freed earlier in this walk.
            let next = self.chunks[cur as usize].next;
            let n = self.chunks[cur as usize].len as usize;
            for i in 0..n {
                let e = self.chunks[cur as usize].entries[i];
                if e.time <= self.base {
                    let event = self.take_cold(e.cold);
                    self.cursor.push_back(WheelEntry {
                        time: e.time,
                        seq: e.seq,
                        event,
                    });
                } else {
                    self.place_entry(e);
                }
            }
            moved += n as u64;
            self.free_chunk(cur);
            cur = next;
        }
        moved
    }

    /// Moves `base` forward to the next pending instant and loads its
    /// events into the (empty) cursor. Called only with `len > 0`.
    ///
    /// Cost is proportional to the entries actually moved: a cascade
    /// streams a bucket's chunks front to back (sequential 24-byte
    /// reads), appends survivors to the ≤ [`SLOTS`] destination tail
    /// chunks (near-sequential writes), and the jump logic skips empty
    /// spans through the occupancy bitmaps without touching any entry
    /// at all. Payloads never move.
    fn advance(&mut self) {
        debug_assert!(self.cursor.is_empty() && self.len > 0);
        loop {
            // Cascade the buckets keyed at base's own index, highest level
            // first so entries settle through lower levels in one pass.
            // Entries landing exactly at base become the ready queue.
            for level in (1..LEVELS).rev() {
                let idx = self.level_index(level);
                if self.occ[level] & (1 << idx) != 0 {
                    self.occ[level] &= !(1 << idx);
                    let bucket = level * SLOTS + idx;
                    let head = self.heads[bucket];
                    self.heads[bucket] = NIL;
                    self.tails[bucket] = NIL;
                    self.stats.cascades += 1;
                    let moved = self.drain_chunk_list(head);
                    self.stats.cascade_entries += moved;
                    self.stats.max_bucket_len = self.stats.max_bucket_len.max(moved);
                }
            }
            if !self.cursor.is_empty() {
                return;
            }
            // Level 0 beats every higher level: its entries are inside
            // base's current 64-µs window, higher levels' are beyond it.
            let idx0 = self.level_index(0);
            let ahead = self.occ[0] >> idx0;
            debug_assert!(ahead & 1 == 0, "level-0 slot at base was not drained");
            if ahead != 0 {
                self.base += u64::from(ahead.trailing_zeros());
                let idx = self.level_index(0);
                self.occ[0] &= !(1 << idx);
                self.stats.level0_jumps += 1;
                let head = self.heads[idx];
                self.heads[idx] = NIL;
                self.tails[idx] = NIL;
                // A level-0 bucket holds exactly one instant, in seq
                // order: every entry goes straight to the cursor.
                let moved = self.drain_chunk_list(head);
                self.stats.max_bucket_len = self.stats.max_bucket_len.max(moved);
                return;
            }
            // Jump to the nearest occupied slot of the lowest occupied
            // level. That slot contains the global minimum (nearer slots
            // of higher levels cannot exist by XOR placement), and the
            // jump leaves base's lower bits zero, so no pending event is
            // overshot. The next iteration cascades it downward.
            if let Some(level) = (1..LEVELS).find(|&l| self.occ[l] != 0) {
                let idx = self.level_index(level);
                let ahead = self.occ[level] >> idx;
                debug_assert!(ahead != 0, "occupied slot behind base at level {level}");
                let shift = SLOT_BITS * level as u32;
                self.base = ((self.base >> shift) + u64::from(ahead.trailing_zeros())) << shift;
                self.stats.level_jumps += 1;
                continue;
            }
            // Everything pending is in the overflow: rebase onto its
            // minimum and re-place. Entries still ≥ 2^36 µs out simply
            // return to the (freshly emptied) overflow list, in order.
            debug_assert!(self.overflow_head != NIL, "len > 0 but nothing pending");
            self.stats.overflow_rebases += 1;
            let mut min = u64::MAX;
            let mut cur = self.overflow_head;
            while cur != NIL {
                let ch = &self.chunks[cur as usize];
                for e in &ch.entries[..ch.len as usize] {
                    min = min.min(e.time);
                }
                cur = ch.next;
            }
            self.base = min;
            let head = self.overflow_head;
            self.overflow_head = NIL;
            self.overflow_tail = NIL;
            self.drain_chunk_list(head);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Runs a queue test against both backends.
    fn on_both(f: impl Fn(QueueKind)) {
        f(QueueKind::Wheel);
        f(QueueKind::Heap);
    }

    #[test]
    fn default_backend_is_the_wheel() {
        let q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::Wheel);
        let q: EventQueue<u8> = EventQueue::with_kind(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_micros(30), 3);
            q.push(SimTime::from_micros(10), 1);
            q.push(SimTime::from_micros(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn fifo_among_equal_times() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn interleaved_pushes_stay_fifo_per_instant() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let a = SimTime::from_millis(1);
            let b = SimTime::from_millis(2);
            q.push(b, "b0");
            q.push(a, "a0");
            q.push(b, "b1");
            q.push(a, "a1");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!["a0", "a1", "b0", "b1"]);
        });
    }

    #[test]
    fn peek_time_matches_next_pop() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_secs(2), ());
            q.push(SimTime::from_secs(1), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(1));
        });
    }

    #[test]
    fn len_and_counters() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            q.push(SimTime::ZERO, ());
            q.push(SimTime::ZERO + SimDuration::from_micros(1), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.pushed_total(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
            assert_eq!(q.pushed_total(), 2);
            q.clear();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(SimTime::ZERO, 7u8);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 7u8)));
    }

    #[test]
    fn far_future_events_cross_the_overflow() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            // ~27.8 h and ~55.6 h: both far beyond the 19.1 h wheel span.
            q.push(SimTime::from_secs(200_000), "far2");
            q.push(SimTime::from_secs(100_000), "far1");
            q.push(SimTime::from_micros(3), "near");
            assert_eq!(q.pop(), Some((SimTime::from_micros(3), "near")));
            assert_eq!(q.pop(), Some((SimTime::from_secs(100_000), "far1")));
            assert_eq!(q.pop(), Some((SimTime::from_secs(200_000), "far2")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn pushing_at_the_current_instant_stays_fifo_after_pop() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(7);
            q.push(t, 0);
            q.push(t + SimDuration::from_millis(1), 9);
            assert_eq!(q.pop(), Some((t, 0)));
            // Model schedules "immediately" while handling the popped event.
            q.push(t, 1);
            q.push(t, 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 9]);
        });
    }

    #[test]
    fn drain_instant_batches_one_instant_in_fifo_order() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let a = SimTime::from_millis(1);
            let b = SimTime::from_millis(2);
            q.push(b, 20);
            q.push(a, 10);
            q.push(a, 11);
            let mut batch = InstantBatch::new();
            assert_eq!(q.drain_instant(&mut batch), Some(a));
            assert_eq!(batch.time(), a);
            assert_eq!(batch.remaining(), 2);
            assert_eq!(batch.next_event(), Some(10));
            assert_eq!(batch.next_event(), Some(11));
            assert_eq!(batch.next_event(), None);
            assert_eq!(q.len(), 1);
            assert_eq!(q.drain_instant(&mut batch), Some(b));
            assert_eq!(batch.next_event(), Some(20));
            assert_eq!(q.drain_instant(&mut batch), None);
        });
    }

    #[test]
    fn restore_puts_the_unconsumed_tail_back_in_order() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(3);
            for i in 0..4 {
                q.push(t, i);
            }
            q.push(t + SimDuration::from_millis(1), 99);
            let mut batch = InstantBatch::new();
            assert_eq!(q.drain_instant(&mut batch), Some(t));
            assert_eq!(batch.next_event(), Some(0));
            // Halt after handling event 0; events pushed meanwhile must
            // still pop after the restored tail.
            q.push(t, 4);
            q.restore(&mut batch);
            assert_eq!(q.len(), 5);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3, 4, 99]);
        });
    }

    #[test]
    fn drain_after_same_instant_push_yields_the_newcomers() {
        on_both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_millis(5);
            q.push(t, 0);
            q.push(SimTime::from_millis(6), 9);
            let mut batch = InstantBatch::new();
            assert_eq!(q.drain_instant(&mut batch), Some(t));
            assert_eq!(batch.next_event(), Some(0));
            // The model schedules at the instant being processed: a second
            // drain must yield it before the later instant.
            q.push(t, 1);
            assert_eq!(q.drain_instant(&mut batch), Some(t));
            assert_eq!(batch.next_event(), Some(1));
            assert_eq!(q.drain_instant(&mut batch), Some(SimTime::from_millis(6)));
            assert_eq!(batch.next_event(), Some(9));
        });
    }

    /// A randomized mirror check against a sorted reference, exercising
    /// slot cascades and wheel jumps across several levels. (The heavier
    /// differential suite lives in `tests/proptests.rs`.)
    #[test]
    fn wheel_matches_sorted_reference_on_a_mixed_schedule() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        let mut expected: Vec<(u64, u64)> = Vec::new();
        // Deterministic pseudo-random times spanning all wheel levels.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for seq in 0..4_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = match seq % 7 {
                0 => x % 64,             // level 0
                1 => x % 4_096,          // level 1
                2 => x % 100_000,        // levels 2-3
                3 => x % 80_000_000_000, // overflow territory
                _ => x % 10_000_000,     // level 4
            };
            q.push(SimTime::from_micros(t), seq);
            expected.push((t, seq));
        }
        expected.sort();
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_micros(), e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn wheel_stats_are_deterministic_and_structural() {
        let run = || {
            let mut q = EventQueue::with_kind(QueueKind::Wheel);
            // Spread across levels plus the overflow, then drain fully.
            for i in 0..500u64 {
                let t = (i * 7919) % 20_000_000;
                q.push(SimTime::from_micros(t), i);
            }
            q.push(SimTime::from_secs(100_000), 999); // beyond the wheel span
            while q.pop().is_some() {}
            q.wheel_stats().expect("wheel backend carries stats")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical push histories must yield identical stats");
        assert!(a.cascades > 0, "multi-level schedule must cascade");
        assert!(a.level0_jumps + a.level_jumps > 0);
        assert_eq!(a.overflow_pushes, 1);
        assert_eq!(a.overflow_rebases, 1);
        assert!(a.max_bucket_len >= 1);
        assert!(a.node_allocs > 0, "slot-resident pushes use the arena");
        assert_eq!(
            a.node_peak_live, a.node_allocs,
            "a push-everything-then-drain schedule never recycles a node"
        );
    }

    /// The allocation-free steady state at queue level: once the live
    /// population peaks, every later push recycles a freed arena slot and
    /// `node_allocs` stops moving.
    #[test]
    fn wheel_arena_recycles_nodes_in_steady_state() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        let mut now = 0u64;
        // Warmup: 64 pending timers spread far enough apart to live in
        // slots (not the cursor).
        for i in 0..64u64 {
            q.push(SimTime::from_micros(1_000 + i * 1_000), i);
        }
        let warm = q.wheel_stats().unwrap();
        assert_eq!(warm.node_allocs, 64);
        // Steady state: pop one, reschedule one, many times over.
        for i in 0..1_000u64 {
            let (t, _) = q.pop().unwrap();
            now = t.as_micros();
            q.push(SimTime::from_micros(now + 64_000), i);
        }
        let s = q.wheel_stats().unwrap();
        assert_eq!(
            s.node_allocs, warm.node_allocs,
            "steady-state churn must be served entirely off the free list"
        );
        assert!(s.node_reuses >= 1_000);
        assert_eq!(s.node_peak_live, 64);
    }

    #[test]
    fn heap_backend_has_no_wheel_stats() {
        let mut q = EventQueue::with_kind(QueueKind::Heap);
        q.push(SimTime::ZERO, ());
        assert_eq!(q.wheel_stats(), None);
        assert_eq!(q.wheel_occupancy(), None);
    }

    #[test]
    fn wheel_occupancy_counts_occupied_slots() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.wheel_occupancy(), Some([0; LEVELS]));
        // Three distinct level-0 slots ahead of base.
        q.push(SimTime::from_micros(1), 0);
        q.push(SimTime::from_micros(2), 1);
        q.push(SimTime::from_micros(3), 2);
        let occ = q.wheel_occupancy().expect("wheel backend");
        assert_eq!(occ[0], 3);
        assert_eq!(occ[1..].iter().sum::<u32>(), 0);
    }
}
