//! The simulation driver.
//!
//! A simulation is a [`Model`] (all mutable world state plus an event
//! handler) driven by a [`Simulation`] loop that pops events from an
//! [`EventQueue`] in timestamp order. The handler
//! receives a [`Scheduler`] through which it books future events.
//!
//! ```
//! use mlb_simkernel::sim::{Model, Scheduler, Simulation};
//! use mlb_simkernel::time::{SimDuration, SimTime};
//!
//! /// Counts ticks of a periodic timer.
//! struct Clock {
//!     ticks: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Clock {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
//!         match event {
//!             Ev::Tick => {
//!                 self.ticks += 1;
//!                 if self.ticks < 5 {
//!                     sched.after(SimDuration::from_millis(10), Ev::Tick);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Clock { ticks: 0 });
//! sim.schedule(SimTime::ZERO, Ev::Tick);
//! let report = sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.model().ticks, 5);
//! assert_eq!(report.events_processed, 5);
//! ```

use crate::prof::{KernelProfile, KernelProfiler, Phase};
use crate::queue::{EventQueue, InstantBatch};
use crate::time::{SimDuration, SimTime};

/// The world state of a simulation together with its event handler.
///
/// Implementors own all mutable state; the kernel owns time. `handle` is
/// called once per event, in global timestamp order with FIFO tie-breaking.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event occurring at `now`, scheduling any follow-up
    /// events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Stable names for the model's event kinds, indexed by
    /// [`Model::event_kind`]. Only consulted when profiling is enabled
    /// ([`Simulation::enable_profiling`]); the default lumps everything
    /// into one bucket.
    fn event_kind_names() -> &'static [&'static str] {
        &["event"]
    }

    /// Classifies an event into an index of [`Model::event_kind_names`].
    /// Must be a pure function of the event (no state, no randomness) so
    /// that profiles stay deterministic. Out-of-range indices are clamped
    /// to the last name.
    fn event_kind(_event: &Self::Event) -> usize {
        0
    }
}

/// Handle through which a [`Model`] books future events while one is being
/// processed.
///
/// Scheduling into the past is a logic error and panics, because it would
/// silently violate causality.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    halt: &'a mut bool,
    /// Same-instant events already drained out of the queue but not yet
    /// handled; counted so [`Scheduler::pending`] reports exactly what a
    /// one-pop-at-a-time loop would.
    batch_pending: usize,
    /// Profiler hooks, present only when the owning simulation enabled
    /// profiling. Timing a push never influences where it lands.
    prof: Option<&'a mut KernelProfiler>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The timestamp of the event currently being processed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Pushes into the queue, attributing the push's wall time to the
    /// `Schedule` phase when profiling is on. Both paths execute the
    /// exact same queue operation.
    fn push_profiled(&mut self, at: SimTime, event: E) {
        match self.prof.as_deref_mut() {
            Some(prof) => {
                let t0 = prof.clock_ns();
                self.queue.push(at, event);
                prof.phase_add(Phase::Schedule, t0);
            }
            None => self.queue.push(at, event),
        }
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`Scheduler::now`].
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.push_profiled(at, event);
    }

    /// Schedules `event` to occur `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.push_profiled(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (it runs after all events
    /// already queued for this instant, preserving FIFO order).
    pub fn immediately(&mut self, event: E) {
        self.push_profiled(self.now, event);
    }

    /// Requests that the driver stop after the current event completes,
    /// leaving any remaining events in the queue.
    pub fn halt(&mut self) {
        *self.halt = true;
    }

    /// Number of events currently pending (including any events of the
    /// current instant that are drained but not yet handled).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.batch_pending
    }
}

/// Why [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The horizon was reached; events at or beyond it remain queued.
    HorizonReached,
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// The model called [`Scheduler::halt`].
    Halted,
}

/// Summary of a driver run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of events the model handled during this run.
    pub events_processed: u64,
    /// Simulation clock when the run stopped.
    pub end_time: SimTime,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// The event loop: owns the model, the clock and the pending-event set.
#[derive(Debug)]
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    events_processed: u64,
    /// `Some` only after [`Simulation::enable_profiling`]; the unprofiled
    /// path pays one branch per hook and nothing else.
    prof: Option<KernelProfiler>,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulation::with_queue(model, EventQueue::new())
    }

    /// Creates a simulation at time zero driving a caller-built queue
    /// (pre-sized, or on a specific [`crate::queue::QueueKind`]). The
    /// queue must be empty.
    pub fn with_queue(model: M, queue: EventQueue<M::Event>) -> Self {
        assert!(queue.is_empty(), "initial event queue must be empty");
        Simulation {
            model,
            queue,
            now: SimTime::ZERO,
            events_processed: 0,
            prof: None,
        }
    }

    /// Turns on kernel self-profiling for all subsequent runs. Profiling
    /// observes — it never changes event order, timestamps, or model
    /// state, so a profiled run is byte-identical to an unprofiled one
    /// (see [`crate::prof`] for the contract).
    pub fn enable_profiling(&mut self) {
        if self.prof.is_none() {
            self.prof = Some(KernelProfiler::new(M::event_kind_names()));
        }
    }

    /// Whether [`Simulation::enable_profiling`] has been called.
    pub fn profiling_enabled(&self) -> bool {
        self.prof.is_some()
    }

    /// Snapshot of the kernel profile (with the queue's wheel statistics
    /// attached), or `None` when profiling was never enabled.
    pub fn profile_snapshot(&self) -> Option<KernelProfile> {
        self.prof
            .as_ref()
            .map(|p| p.snapshot(self.queue.wheel_stats()))
    }

    /// The queue's wheel statistics (`None` on the heap backend).
    /// Available without profiling — wheel counters cost nothing to
    /// maintain, so benches can read them on unprofiled runs.
    pub fn wheel_stats(&self) -> Option<crate::queue::WheelStats> {
        self.queue.wheel_stats()
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the model (for reading results).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for pre-run configuration).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Total events handled so far across all runs.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event from outside the model (typically the initial
    /// stimulus).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Processes a single event, if one is pending. Returns `true` if an
    /// event was handled.
    pub fn step(&mut self) -> bool {
        let d0 = self.prof.as_ref().map(KernelProfiler::clock_ns);
        match self.queue.pop() {
            Some((time, event)) => {
                if let (Some(prof), Some(d0)) = (self.prof.as_mut(), d0) {
                    prof.phase_add(Phase::Drain, d0);
                }
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                let kind = if self.prof.is_some() {
                    M::event_kind(&event)
                } else {
                    0
                };
                let h0 = self.prof.as_ref().map(KernelProfiler::clock_ns);
                let mut halt = false;
                let mut sched = Scheduler {
                    now: time,
                    queue: &mut self.queue,
                    halt: &mut halt,
                    batch_pending: 0,
                    prof: self.prof.as_mut(),
                };
                self.model.handle(time, event, &mut sched);
                if let (Some(prof), Some(h0)) = (self.prof.as_mut(), h0) {
                    prof.record_event(kind, h0);
                }
                self.events_processed += 1;
                true
            }
            None => false,
        }
    }

    /// Runs until the clock would pass `horizon`, the queue empties, or the
    /// model halts. Events stamped exactly at `horizon` are **not**
    /// processed; the clock is left at `horizon` when the horizon is hit.
    ///
    /// The loop drains the queue one *instant* at a time
    /// ([`EventQueue::drain_instant`]): all events of the earliest
    /// timestamp come out in one queue touch and are handled in FIFO
    /// order. Events the model schedules *at* the instant being processed
    /// land in the queue and are picked up by the next drain, which keeps
    /// the handling order identical to a one-pop-at-a-time loop (their
    /// sequence numbers are larger than every drained event's). On halt,
    /// the unhandled tail of the batch is restored to the queue, so
    /// [`Simulation::pending`] afterwards matches one-pop-at-a-time
    /// semantics exactly.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        let start_count = self.events_processed;
        let mut batch = InstantBatch::new();
        loop {
            let d0 = self.prof.as_ref().map(KernelProfiler::clock_ns);
            match self.queue.peek_time() {
                None => {
                    return RunReport {
                        events_processed: self.events_processed - start_count,
                        end_time: self.now,
                        reason: StopReason::QueueEmpty,
                    };
                }
                Some(t) if t >= horizon => {
                    self.now = horizon;
                    return RunReport {
                        events_processed: self.events_processed - start_count,
                        end_time: self.now,
                        reason: StopReason::HorizonReached,
                    };
                }
                Some(_) => {
                    let time = self
                        .queue
                        .drain_instant(&mut batch)
                        // simlint::allow(panic-hygiene): peek_time() just returned Some and nothing else pops the queue
                        .expect("peeked event vanished");
                    if let (Some(prof), Some(d0)) = (self.prof.as_mut(), d0) {
                        prof.phase_add(Phase::Drain, d0);
                    }
                    self.now = time;
                    while let Some(event) = batch.next_event() {
                        let kind = if self.prof.is_some() {
                            M::event_kind(&event)
                        } else {
                            0
                        };
                        let h0 = self.prof.as_ref().map(KernelProfiler::clock_ns);
                        let mut halt = false;
                        let mut sched = Scheduler {
                            now: time,
                            queue: &mut self.queue,
                            halt: &mut halt,
                            batch_pending: batch.remaining(),
                            prof: self.prof.as_mut(),
                        };
                        self.model.handle(time, event, &mut sched);
                        if let (Some(prof), Some(h0)) = (self.prof.as_mut(), h0) {
                            prof.record_event(kind, h0);
                        }
                        self.events_processed += 1;
                        if halt {
                            self.queue.restore(&mut batch);
                            return RunReport {
                                events_processed: self.events_processed - start_count,
                                end_time: self.now,
                                reason: StopReason::Halted,
                            };
                        }
                    }
                }
            }
        }
    }

    /// Runs until the queue is empty or the model halts.
    pub fn run_to_completion(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        halt_on: Option<u32>,
        respawn: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now, ev));
            if self.halt_on == Some(ev) {
                sched.halt();
            }
            if self.respawn && ev < 3 {
                sched.after(SimDuration::from_millis(1), ev + 1);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            halt_on: None,
            respawn: false,
        }
    }

    #[test]
    fn processes_in_order_and_reports() {
        let mut sim = Simulation::new(recorder());
        sim.schedule(SimTime::from_millis(2), 2);
        sim.schedule(SimTime::from_millis(1), 1);
        let report = sim.run_until(SimTime::from_secs(1));
        assert_eq!(report.reason, StopReason::QueueEmpty);
        assert_eq!(report.events_processed, 2);
        assert_eq!(
            sim.model().seen,
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(2), 2)]
        );
    }

    #[test]
    fn horizon_excludes_events_at_horizon() {
        let mut sim = Simulation::new(recorder());
        sim.schedule(SimTime::from_millis(5), 5);
        sim.schedule(SimTime::from_millis(10), 10);
        let report = sim.run_until(SimTime::from_millis(10));
        assert_eq!(report.reason, StopReason::HorizonReached);
        assert_eq!(sim.model().seen.len(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn model_can_chain_events() {
        let mut sim = Simulation::new(Recorder {
            respawn: true,
            ..recorder()
        });
        sim.schedule(SimTime::ZERO, 0);
        sim.run_to_completion();
        let values: Vec<u32> = sim.model().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn halt_stops_immediately() {
        let mut sim = Simulation::new(Recorder {
            halt_on: Some(1),
            ..recorder()
        });
        sim.schedule(SimTime::from_millis(1), 1);
        sim.schedule(SimTime::from_millis(2), 2);
        let report = sim.run_to_completion();
        assert_eq!(report.reason, StopReason::Halted);
        assert_eq!(sim.model().seen.len(), 1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn halt_mid_instant_restores_the_batch_tail() {
        let mut sim = Simulation::new(Recorder {
            halt_on: Some(1),
            ..recorder()
        });
        let t = SimTime::from_millis(1);
        for ev in 0..4 {
            sim.schedule(t, ev);
        }
        sim.schedule(SimTime::from_millis(2), 9);
        let report = sim.run_to_completion();
        assert_eq!(report.reason, StopReason::Halted);
        assert_eq!(sim.model().seen, vec![(t, 0), (t, 1)]);
        // Events 2 and 3 (same instant) plus event 9 stay pending.
        assert_eq!(sim.pending(), 3);
        // Resuming handles the restored tail first, in the original order.
        sim.model_mut().halt_on = None;
        sim.run_to_completion();
        let values: Vec<u32> = sim.model().seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 9]);
    }

    #[test]
    fn scheduler_pending_counts_drained_batch_mates() {
        struct PendingProbe {
            observed: Vec<usize>,
        }
        impl Model for PendingProbe {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, _ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.observed.push(sched.pending());
            }
        }
        let mut sim = Simulation::new(PendingProbe {
            observed: Vec::new(),
        });
        let t = SimTime::from_millis(1);
        for ev in 0..3 {
            sim.schedule(t, ev);
        }
        sim.schedule(SimTime::from_millis(2), 9);
        sim.run_to_completion();
        // Exactly what a one-pop-at-a-time loop reports: the not-yet-handled
        // same-instant events count as pending.
        assert_eq!(sim.model().observed, vec![3, 2, 1, 0]);
    }

    #[test]
    fn step_handles_one_event() {
        let mut sim = Simulation::new(recorder());
        assert!(!sim.step());
        sim.schedule(SimTime::from_millis(1), 9);
        assert!(sim.step());
        assert_eq!(sim.events_processed(), 1);
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(recorder());
        sim.schedule(SimTime::from_secs(1), 1);
        sim.run_to_completion();
        sim.schedule(SimTime::ZERO, 2);
    }

    #[test]
    fn scheduler_immediately_preserves_fifo() {
        struct Imm {
            seen: Vec<u32>,
        }
        impl Model for Imm {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.seen.push(ev);
                if ev == 0 {
                    sched.immediately(1);
                    sched.immediately(2);
                }
            }
        }
        let mut sim = Simulation::new(Imm { seen: Vec::new() });
        sim.schedule(SimTime::ZERO, 0);
        sim.run_to_completion();
        assert_eq!(sim.model().seen, vec![0, 1, 2]);
    }

    #[test]
    fn into_model_returns_state() {
        let mut sim = Simulation::new(recorder());
        sim.schedule(SimTime::ZERO, 4);
        sim.run_to_completion();
        let model = sim.into_model();
        assert_eq!(model.seen.len(), 1);
    }

    /// Recorder with a real event-kind vocabulary: evens vs odds.
    struct Kinded {
        seen: Vec<u32>,
    }

    impl Model for Kinded {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push(ev);
            if ev < 6 {
                sched.after(SimDuration::from_millis(1), ev + 1);
            }
        }
        fn event_kind_names() -> &'static [&'static str] {
            &["even", "odd"]
        }
        fn event_kind(event: &u32) -> usize {
            (*event % 2) as usize
        }
    }

    #[test]
    fn profiling_counts_kinds_without_changing_the_run() {
        let run = |profiled: bool| {
            let mut sim = Simulation::new(Kinded { seen: Vec::new() });
            if profiled {
                sim.enable_profiling();
            }
            sim.schedule(SimTime::ZERO, 0);
            let report = sim.run_to_completion();
            let profile = sim.profile_snapshot();
            (sim.into_model().seen, report, profile)
        };
        let (plain_seen, plain_report, plain_profile) = run(false);
        let (prof_seen, prof_report, profile) = run(true);
        assert!(plain_profile.is_none());
        assert_eq!(plain_seen, prof_seen, "profiling changed the event order");
        assert_eq!(plain_report, prof_report, "profiling changed the report");

        let Some(profile) = profile else {
            panic!("profiling was enabled")
        };
        // Events 0..=6: four evens, three odds — pure function of the run.
        assert_eq!(profile.kind_names, &["even", "odd"]);
        assert_eq!(profile.kind_counts, vec![4, 3]);
        assert_eq!(profile.events_total(), 7);
        assert_eq!(profile.phase_count(Phase::Handle), 7);
        // Each handled instant is one drain; six handler pushes.
        assert_eq!(profile.phase_count(Phase::Drain), 7);
        assert_eq!(profile.phase_count(Phase::Schedule), 6);
        assert!(profile.wheel.is_some(), "default queue is the wheel");
    }

    #[test]
    fn step_profiles_too() {
        let mut sim = Simulation::new(Kinded { seen: Vec::new() });
        sim.enable_profiling();
        assert!(sim.profiling_enabled());
        sim.schedule(SimTime::ZERO, 1);
        assert!(sim.step());
        let Some(profile) = sim.profile_snapshot() else {
            panic!("profiling was enabled")
        };
        assert_eq!(profile.kind_counts, vec![0, 1]);
        assert_eq!(profile.phase_count(Phase::Drain), 1);
    }
}
