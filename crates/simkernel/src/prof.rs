//! `simprof` — deterministic kernel self-profiling.
//!
//! The paper's argument is that coarse monitoring hides millibottlenecks;
//! the simulator's own toolchain has the same blind spot one level down:
//! `BENCH_kernel.json` shows events/sec collapsing as the population
//! grows, but nothing says *where* kernel time goes. This module is the
//! kernel's answer: per-event-kind counts and wall-ns totals, per-phase
//! timing (drain vs. handler vs. schedule), and — via
//! [`crate::queue::WheelStats`] — the timer wheel's structural counters.
//!
//! # The byte-identity contract
//!
//! Profiling is **off by default** and enabling it must never change a
//! simulation's outcome. The contract is structural:
//!
//! * the profiler only ever *reads* the wall clock and *writes* its own
//!   counters — no value derived from a wall-clock read flows into
//!   [`crate::time::SimTime`], the event queue, or any model state;
//! * every hook is an `Option` check on the unprofiled path, so the
//!   event order, RNG draws, and telemetry of a profiled run are
//!   bit-identical to an unprofiled one (the seed-7/8/42 golden trace
//!   digests pin this end to end);
//! * counts and kind classifications are pure functions of the event
//!   stream, so the `.count` side of a profile is itself deterministic;
//!   only `.wall_ns` values vary run to run, and the export digest
//!   excludes them (`mlb-metrics::prof::deterministic_digest`).
//!
//! All wall-clock reads in the entire kernel live in this module — the
//! one `Instant::now()` below carries the only `no-wall-clock` simlint
//! carve-out in the workspace's simulation crates.

use std::time::Instant;

use crate::queue::WheelStats;

/// The kernel phases the profiler attributes wall time to.
///
/// `Handle` brackets the whole model callback, so time spent inside
/// [`crate::sim::Scheduler`] push calls (`Schedule`) is a *subset* of
/// `Handle`, not disjoint from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Locating and draining the next instant out of the event queue
    /// (`peek_time` + `drain_instant`, including wheel cascades).
    Drain,
    /// The model's event handler, end to end.
    Handle,
    /// `Scheduler::at`/`after`/`immediately` pushes issued by the
    /// handler (included in `Handle` as well).
    Schedule,
}

impl Phase {
    /// All phases, in export order.
    pub const ALL: [Phase; 3] = [Phase::Drain, Phase::Handle, Phase::Schedule];

    /// Stable lowercase label used in `prof.*` metric names.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Drain => "drain",
            Phase::Handle => "handle",
            Phase::Schedule => "schedule",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Drain => 0,
            Phase::Handle => 1,
            Phase::Schedule => 2,
        }
    }
}

/// Live profiling state owned by a [`crate::sim::Simulation`].
///
/// Constructed by `Simulation::enable_profiling`; all accumulators are
/// plain `u64`s. Wall time is measured as nanoseconds since the
/// profiler's construction anchor, so individual reads are cheap
/// monotonic deltas.
#[derive(Debug)]
pub struct KernelProfiler {
    /// The single wall-clock anchor; every measurement is an elapsed
    /// delta against it. See the module docs for the carve-out argument.
    anchor: Instant,
    kind_names: &'static [&'static str],
    kind_counts: Vec<u64>,
    kind_wall_ns: Vec<u64>,
    phase_counts: [u64; 3],
    phase_wall_ns: [u64; 3],
}

impl KernelProfiler {
    /// Creates a profiler over the model's event-kind vocabulary.
    //
    // This is the one sanctioned wall-clock read in the sim crates: the
    // elapsed-ns deltas taken against this anchor feed only `prof.*`
    // counters and never reach SimTime, the queue, or model state (the
    // seed-7/8/42 golden digests pin profiled == unprofiled
    // byte-for-byte).
    // simlint::allow(no-wall-clock): single profiler anchor; deltas feed prof.* counters only
    pub fn new(kind_names: &'static [&'static str]) -> Self {
        KernelProfiler {
            anchor: Instant::now(),
            kind_names,
            kind_counts: vec![0; kind_names.len()],
            kind_wall_ns: vec![0; kind_names.len()],
            phase_counts: [0; 3],
            phase_wall_ns: [0; 3],
        }
    }

    /// Nanoseconds since the profiler was created — the raw material of
    /// every phase measurement. The value is wall time and must never be
    /// fed anywhere but [`KernelProfiler::phase_add`] /
    /// [`KernelProfiler::record_event`].
    pub fn clock_ns(&self) -> u64 {
        let ns = self.anchor.elapsed().as_nanos();
        u64::try_from(ns).unwrap_or(u64::MAX)
    }

    /// Attributes the wall time since `start_ns` (a prior
    /// [`KernelProfiler::clock_ns`] read) to `phase`.
    pub fn phase_add(&mut self, phase: Phase, start_ns: u64) {
        let i = phase.index();
        self.phase_counts[i] += 1;
        self.phase_wall_ns[i] += self.clock_ns().saturating_sub(start_ns);
    }

    /// Records one handled event of `kind` whose handler started at
    /// `start_ns`; bumps the kind accumulators and the `Handle` phase.
    pub fn record_event(&mut self, kind: usize, start_ns: u64) {
        let spent = self.clock_ns().saturating_sub(start_ns);
        let i = kind.min(self.kind_counts.len().saturating_sub(1));
        self.kind_counts[i] += 1;
        self.kind_wall_ns[i] += spent;
        self.phase_counts[Phase::Handle.index()] += 1;
        self.phase_wall_ns[Phase::Handle.index()] += spent;
    }

    /// Freezes the accumulators into a plain-data snapshot, attaching
    /// the queue's wheel statistics when the wheel backend ran.
    pub fn snapshot(&self, wheel: Option<WheelStats>) -> KernelProfile {
        KernelProfile {
            kind_names: self.kind_names,
            kind_counts: self.kind_counts.clone(),
            kind_wall_ns: self.kind_wall_ns.clone(),
            phase_counts: self.phase_counts,
            phase_wall_ns: self.phase_wall_ns,
            wheel,
        }
    }
}

/// A finished profile: plain integers, no clock handles.
///
/// The `*_counts` fields (and [`KernelProfile::wheel`]) are pure
/// functions of the event stream and therefore deterministic for a fixed
/// seed; the `*_wall_ns` fields are host timing and vary run to run.
/// Exporters must keep the two separable — `mlb-metrics` names them
/// `prof.….count` vs `prof.….wall_ns` and digests only the former.
#[derive(Debug, Clone, PartialEq, Eq)]
// simlint::state(observer)
pub struct KernelProfile {
    /// Event-kind vocabulary, in the model's declaration order.
    pub kind_names: &'static [&'static str],
    /// Events handled per kind (deterministic).
    pub kind_counts: Vec<u64>,
    /// Wall nanoseconds spent in handlers per kind (nondeterministic).
    pub kind_wall_ns: Vec<u64>,
    /// Measurements per phase, [`Phase::ALL`] order (deterministic).
    pub phase_counts: [u64; 3],
    /// Wall nanoseconds per phase, [`Phase::ALL`] order
    /// (nondeterministic).
    pub phase_wall_ns: [u64; 3],
    /// Timer-wheel structural counters (deterministic), when the run
    /// used the wheel backend.
    pub wheel: Option<WheelStats>,
}

impl KernelProfile {
    /// Total events recorded across all kinds.
    pub fn events_total(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// Count for a phase.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_counts[phase.index()]
    }

    /// Wall nanoseconds for a phase.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_wall_ns[phase.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_stable_labels_and_order() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["drain", "handle", "schedule"]);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn record_event_bumps_kind_and_handle_phase() {
        let mut p = KernelProfiler::new(&["a", "b"]);
        let t0 = p.clock_ns();
        p.record_event(1, t0);
        p.record_event(1, t0);
        p.record_event(0, t0);
        let s = p.snapshot(None);
        assert_eq!(s.kind_counts, vec![1, 2]);
        assert_eq!(s.events_total(), 3);
        assert_eq!(s.phase_count(Phase::Handle), 3);
        assert_eq!(s.phase_count(Phase::Drain), 0);
    }

    #[test]
    fn out_of_range_kind_clamps_to_last_bucket() {
        let mut p = KernelProfiler::new(&["only"]);
        p.record_event(99, 0);
        assert_eq!(p.snapshot(None).kind_counts, vec![1]);
    }

    #[test]
    fn clock_is_monotonic_enough_for_deltas() {
        let p = KernelProfiler::new(&["e"]);
        let a = p.clock_ns();
        let b = p.clock_ns();
        assert!(b >= a, "elapsed-ns deltas must not go backwards");
    }

    #[test]
    fn phase_add_accumulates() {
        let mut p = KernelProfiler::new(&["e"]);
        p.phase_add(Phase::Drain, 0);
        p.phase_add(Phase::Drain, 0);
        p.phase_add(Phase::Schedule, 0);
        let s = p.snapshot(None);
        assert_eq!(s.phase_count(Phase::Drain), 2);
        assert_eq!(s.phase_count(Phase::Schedule), 1);
    }
}
