//! Simulated time.
//!
//! The kernel measures time in **integer microseconds**. Integer time keeps
//! event ordering exact (no floating-point drift) and makes simulations
//! bit-for-bit reproducible. Two newtypes provide static distinctions:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! Arithmetic follows the same shape as `std::time`:
//! `SimTime + SimDuration = SimTime`, `SimTime - SimTime = SimDuration`.
//!
//! ```
//! use mlb_simkernel::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO + SimDuration::from_millis(250);
//! let end = start + SimDuration::from_secs(1);
//! assert_eq!(end - start, SimDuration::from_secs(1));
//! assert_eq!(end.as_micros(), 1_250_000);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and `Copy`; it is the key by which the
/// [event queue](crate::queue::EventQueue) orders pending events.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(3);
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t + SimDuration::from_millis(500), SimTime::from_micros(3_500_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// assert_eq!(d * 4, SimDuration::from_millis(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the microsecond representation.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the microsecond representation.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This instant as whole microseconds since the start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as (possibly fractional) milliseconds since the start.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant as (possibly fractional) seconds since the start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future of `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlb_simkernel::time::{SimDuration, SimTime};
    ///
    /// let a = SimTime::from_millis(10);
    /// let b = SimTime::from_millis(30);
    /// assert_eq!(b.saturating_since(a), SimDuration::from_millis(20));
    /// assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    /// ```
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration elapsed since `earlier`, if `earlier <= self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// This duration in whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if this is the empty duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts `other`, saturating at [`SimDuration::ZERO`].
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a scalar, saturating at [`SimDuration::MAX`].
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation time overflowed"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] for a non-panicking variant.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if the result would be before the simulation start.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflowed the simulation start"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflowed"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`SimDuration::saturating_sub`] for a
    /// non-panicking variant.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflowed"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflowed"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<u64> for SimDuration {
    /// Interprets the raw value as microseconds.
    #[inline]
    fn from(micros: u64) -> Self {
        SimDuration(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_micros(2_000_000)
        );
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn time_minus_time_is_duration() {
        let d = SimTime::from_secs(3) - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(3);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn checked_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(2)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_micros(25_000));
        assert_eq!(
            d - SimDuration::from_millis(40),
            SimDuration::from_millis(60)
        );
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.0000015),
            SimDuration::from_micros(2)
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_micros(1_500_000)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_from_negative_secs_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(2_500_000).to_string(), "2.500s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }

    #[test]
    fn float_views() {
        let t = SimTime::from_micros(2_500_000);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(2),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(2)
            ]
        );
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
