//! Reproducible random-number streams.
//!
//! Every stochastic component of a simulation draws from its own independent
//! stream so that adding a component (or reordering draws inside one) never
//! perturbs the others. Streams are derived from one master seed with
//! [`SeedSequence`], and the generator itself ([`Xoshiro256StarStar`]) is
//! implemented here so that results are stable regardless of `rand` crate
//! version bumps.
//!
//! ```
//! use mlb_simkernel::rng::SeedSequence;
//! use rand::Rng;
//!
//! let mut seq = SeedSequence::new(42);
//! let mut workload_rng = seq.stream("workload");
//! let mut network_rng = seq.stream("network");
//! let a: f64 = workload_rng.gen();
//! let b: f64 = network_rng.gen();
//! assert_ne!(a, b); // independent streams
//! ```

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64: a tiny, well-distributed generator used for seed expansion.
///
/// This is the generator recommended by the xoshiro authors for seeding
/// larger-state generators. It is deliberately *not* exposed for general
/// simulation use — use [`Xoshiro256StarStar`] streams instead.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(7);
/// let first = sm.next_u64();
/// let second = sm.next_u64();
/// assert_ne!(first, second);
/// assert_eq!(SplitMix64::new(7).next_u64(), first); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform draw from `[0, n)` without modulo bias, using
    /// Lemire's widening-multiply rejection method. Consumes one 64-bit
    /// output in the common case and rejects with probability < n/2⁶⁴.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlb_simkernel::rng::SplitMix64;
    ///
    /// let mut sm = SplitMix64::new(7);
    /// for _ in 0..100 {
    ///     assert!(sm.next_bounded(3) < 3);
    /// }
    /// ```
    pub fn next_bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_bounded: n must be positive");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            // Reject the low fringe that maps unevenly onto [0, n).
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// xoshiro256** 1.0 — the kernel's general-purpose generator.
///
/// 256 bits of state, passes BigCrush, and fast enough to be invisible in
/// event-loop profiles. Implements [`rand::RngCore`] so the full `rand`
/// distribution machinery works on top of it.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::rng::Xoshiro256StarStar;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(123);
/// let x: u32 = rng.gen_range(0..10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding a 64-bit seed through
    /// [`SplitMix64`], per the xoshiro reference implementation.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *slot = u64::from_le_bytes(b);
        }
        if s == [0, 0, 0, 0] {
            // An all-zero state is a fixed point; re-expand from a constant.
            return Xoshiro256StarStar::from_seed_u64(0x9E37_79B9_7F4A_7C15);
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256StarStar::from_seed_u64(state)
    }
}

/// Derives independent, named RNG streams from a single master seed.
///
/// The stream for a given `(master_seed, name)` pair is always the same,
/// and streams with different names are statistically independent. Names
/// are hashed with FNV-1a so stream identity does not depend on call order.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::rng::SeedSequence;
/// use rand::RngCore;
///
/// let mut a = SeedSequence::new(1).stream("pdflush");
/// let mut b = SeedSequence::new(1).stream("pdflush");
/// assert_eq!(a.next_u64(), b.next_u64()); // same name, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master_seed`.
    pub const fn new(master_seed: u64) -> Self {
        SeedSequence {
            master: master_seed,
        }
    }

    /// The master seed this sequence was built from.
    pub const fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the generator for the named stream.
    pub fn stream(&mut self, name: &str) -> Xoshiro256StarStar {
        Xoshiro256StarStar::from_seed_u64(self.master ^ fnv1a(name.as_bytes()))
    }

    /// Returns the generator for a numbered instance of a named stream,
    /// e.g. one stream per simulated server.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlb_simkernel::rng::SeedSequence;
    /// use rand::RngCore;
    ///
    /// let mut seq = SeedSequence::new(9);
    /// let mut t0 = seq.stream_indexed("tomcat", 0);
    /// let mut t1 = seq.stream_indexed("tomcat", 1);
    /// assert_ne!(t0.next_u64(), t1.next_u64());
    /// ```
    pub fn stream_indexed(&mut self, name: &str, index: usize) -> Xoshiro256StarStar {
        let mut h = fnv1a(name.as_bytes());
        h = fnv1a_extend(h, &(index as u64).to_le_bytes());
        Xoshiro256StarStar::from_seed_u64(self.master ^ h)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Samples an exponentially distributed duration with the given mean.
///
/// Used for think times and service-time jitter. Implemented by inverse-CDF
/// so only a uniform draw is needed.
///
/// # Examples
///
/// ```
/// use mlb_simkernel::rng::{exponential, SeedSequence};
/// use mlb_simkernel::time::SimDuration;
///
/// let mut rng = SeedSequence::new(5).stream("think");
/// let d = exponential(&mut rng, SimDuration::from_secs(7));
/// assert!(d > SimDuration::ZERO);
/// ```
pub fn exponential<R: RngCore>(rng: &mut R, mean: SimDurationArg) -> crate::time::SimDuration {
    let mean = mean.as_secs_f64();
    // Map to the open interval (0, 1] so ln() is finite.
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let u = (1.0 - u).max(f64::MIN_POSITIVE);
    crate::time::SimDuration::from_secs_f64(-mean * u.ln())
}

/// Samples a duration uniformly from `[low, high]`.
///
/// # Panics
///
/// Panics if `low > high`.
pub fn uniform_duration<R: RngCore>(
    rng: &mut R,
    low: crate::time::SimDuration,
    high: crate::time::SimDuration,
) -> crate::time::SimDuration {
    assert!(low <= high, "uniform_duration: low > high");
    let span = high.as_micros() - low.as_micros();
    if span == 0 {
        return low;
    }
    let offset = rng.next_u64() % (span + 1);
    crate::time::SimDuration::from_micros(low.as_micros() + offset)
}

// A tiny alias so `exponential` reads naturally at call sites while still
// taking the strongly-typed duration.
use crate::time::SimDuration as SimDurationArg;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let out: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(out[0], 6457827717110365317);
        assert_eq!(out[1], 3203168211198807973);
        assert_eq!(out[2], 9817491932198370423);
    }

    #[test]
    fn next_bounded_stays_in_range_and_covers_it() {
        let mut sm = SplitMix64::new(2024);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = sm.next_bounded(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        // Degenerate bound.
        assert_eq!(sm.next_bounded(1), 0);
    }

    #[test]
    fn next_bounded_is_deterministic_per_seed() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for n in [2u64, 3, 10, 1 << 40, u64::MAX] {
            assert_eq!(a.next_bounded(n), b.next_bounded(n));
        }
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn next_bounded_zero_panics() {
        SplitMix64::new(0).next_bounded(0);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xoshiro_fill_bytes_handles_remainders() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn xoshiro_from_seed_zero_guard() {
        let rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        let mut r = rng;
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn streams_are_named_and_stable() {
        let mut seq = SeedSequence::new(7);
        let mut s1 = seq.stream("a");
        let mut s2 = seq.stream("a");
        assert_eq!(s1.next_u64(), s2.next_u64());
        let mut s3 = seq.stream("b");
        assert_ne!(s1.next_u64(), s3.next_u64());
    }

    #[test]
    fn indexed_streams_differ() {
        let mut seq = SeedSequence::new(7);
        let mut a = seq.stream_indexed("server", 0);
        let mut b = seq.stream_indexed("server", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let mean = SimDuration::from_millis(100);
        let n = 50_000;
        let total: u64 = (0..n)
            .map(|_| exponential(&mut rng, mean).as_micros())
            .sum();
        let sample_mean = total as f64 / n as f64;
        let expected = mean.as_micros() as f64;
        assert!(
            (sample_mean - expected).abs() / expected < 0.03,
            "sample mean {sample_mean} too far from {expected}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(exponential(&mut rng, SimDuration::from_micros(10)) >= SimDuration::ZERO);
        }
    }

    #[test]
    fn uniform_duration_within_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let low = SimDuration::from_micros(100);
        let high = SimDuration::from_micros(200);
        for _ in 0..1_000 {
            let d = uniform_duration(&mut rng, low, high);
            assert!(d >= low && d <= high);
        }
    }

    #[test]
    fn uniform_duration_degenerate_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let d = SimDuration::from_micros(55);
        assert_eq!(uniform_duration(&mut rng, d, d), d);
    }

    #[test]
    fn works_with_rand_distributions() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
