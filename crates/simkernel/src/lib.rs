//! # mlb-simkernel — deterministic discrete-event simulation kernel
//!
//! The foundation of the `millibalance` workspace: a minimal, fully
//! deterministic discrete-event simulation (DES) engine used to reproduce
//! the ICDCS 2017 paper *"Limitations of Load Balancing Mechanisms for
//! N-Tier Systems in the Presence of Millibottlenecks"*.
//!
//! Millibottlenecks live at 10–100 ms timescales; reproducing them on wall
//! clocks would be hostage to host scheduling noise. This kernel instead
//! gives bit-for-bit reproducible runs:
//!
//! * [`time`] — integer-microsecond [`SimTime`]/[`SimDuration`] newtypes,
//!   so event ordering is exact.
//! * [`queue`] — an [`EventQueue`] with deterministic FIFO tie-breaking
//!   among simultaneous events.
//! * [`sim`] — the [`Simulation`] driver and the [`Model`] trait that the
//!   n-tier system implements.
//! * [`rng`] — named, independent random streams derived from a single
//!   master seed ([`SeedSequence`]), backed by an in-crate xoshiro256**
//!   so that results never shift under `rand` upgrades.
//!
//! # Examples
//!
//! A two-event M/D/1-ish sketch:
//!
//! ```
//! use mlb_simkernel::prelude::*;
//!
//! struct Server { completed: u32 }
//!
//! enum Ev { Arrive, Finish }
//!
//! impl Model for Server {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, ev: Ev, sched: &mut Scheduler<'_, Ev>) {
//!         match ev {
//!             Ev::Arrive => sched.after(SimDuration::from_millis(2), Ev::Finish),
//!             Ev::Finish => self.completed += 1,
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Server { completed: 0 });
//! sim.schedule(SimTime::from_millis(1), Ev::Arrive);
//! sim.run_to_completion();
//! assert_eq!(sim.model().completed, 1);
//! assert_eq!(sim.now(), SimTime::from_millis(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod prof;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

pub use prof::{KernelProfile, KernelProfiler, Phase};
pub use queue::{EventQueue, WheelStats};
pub use rng::{SeedSequence, SplitMix64, Xoshiro256StarStar};
pub use sim::{Model, RunReport, Scheduler, Simulation, StopReason};
pub use time::{SimDuration, SimTime};

/// Convenient glob-import surface: `use mlb_simkernel::prelude::*;`.
pub mod prelude {
    pub use crate::prof::{KernelProfile, Phase};
    pub use crate::queue::{EventQueue, WheelStats};
    pub use crate::rng::{SeedSequence, Xoshiro256StarStar};
    pub use crate::sim::{Model, RunReport, Scheduler, Simulation, StopReason};
    pub use crate::time::{SimDuration, SimTime};
}
