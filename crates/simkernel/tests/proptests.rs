//! Property tests for the simulation kernel's ordering and arithmetic
//! invariants.

use mlb_simkernel::queue::EventQueue;
use mlb_simkernel::rng::{exponential, uniform_duration, SeedSequence, Xoshiro256StarStar};
use mlb_simkernel::time::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

proptest! {
    /// Popping always yields events in non-decreasing time order, with
    /// FIFO order among equal timestamps.
    #[test]
    fn event_queue_is_time_ordered_and_stable(
        times in proptest::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), seq);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated among ties");
                }
            }
            last = Some((t, seq));
        }
    }

    /// The queue returns exactly what was pushed.
    #[test]
    fn event_queue_conserves_events(
        times in proptest::collection::vec(0u64..10_000, 0..300)
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), t);
        }
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut expected = times.clone();
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// SimTime/SimDuration arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrips(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(base);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur).saturating_since(t), dur);
    }

    /// saturating_since never panics and is zero when earlier >= later.
    #[test]
    fn saturating_since_is_total(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
        let d = ta.saturating_since(tb);
        if a <= b {
            prop_assert_eq!(d, SimDuration::ZERO);
        } else {
            prop_assert_eq!(d.as_micros(), a - b);
        }
    }

    /// Exponential samples are non-negative and finite for any seed/mean.
    #[test]
    fn exponential_is_well_formed(seed in any::<u64>(), mean_us in 1u64..10_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..16 {
            let d = exponential(&mut rng, SimDuration::from_micros(mean_us));
            prop_assert!(d.as_micros() < u64::MAX / 2);
        }
    }

    /// Uniform duration samples respect their bounds for any range.
    #[test]
    fn uniform_duration_in_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 0u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let lo_d = SimDuration::from_micros(lo);
        let hi_d = SimDuration::from_micros(lo + span);
        let d = uniform_duration(&mut rng, lo_d, hi_d);
        prop_assert!(d >= lo_d && d <= hi_d);
    }

    /// Named streams are independent of creation order.
    #[test]
    fn seed_streams_are_order_independent(master in any::<u64>()) {
        let mut s1 = SeedSequence::new(master);
        let mut s2 = SeedSequence::new(master);
        let mut a1 = s1.stream("alpha");
        let _ = s1.stream("beta");
        let _ = s2.stream("beta");
        let mut a2 = s2.stream("alpha");
        prop_assert_eq!(a1.next_u64(), a2.next_u64());
    }

    /// Generator output is uniform-ish: each of the 4 top bit-pairs of a
    /// u64 appears for some draw within a modest window (smoke-level
    /// sanity, not a statistical test).
    #[test]
    fn xoshiro_hits_all_quadrants(seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[(rng.next_u64() >> 62) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
