//! Property tests for the simulation kernel's ordering and arithmetic
//! invariants.

use mlb_simkernel::queue::{EventQueue, InstantBatch, QueueKind};
use mlb_simkernel::rng::{exponential, uniform_duration, SeedSequence, Xoshiro256StarStar};
use mlb_simkernel::time::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

proptest! {
    /// Popping always yields events in non-decreasing time order, with
    /// FIFO order among equal timestamps.
    #[test]
    fn event_queue_is_time_ordered_and_stable(
        times in proptest::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), seq);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated among ties");
                }
            }
            last = Some((t, seq));
        }
    }

    /// The queue returns exactly what was pushed.
    #[test]
    fn event_queue_conserves_events(
        times in proptest::collection::vec(0u64..10_000, 0..300)
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), t);
        }
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut expected = times.clone();
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// The timer wheel and the `BinaryHeap` reference implementation pop
    /// identical (time, event) sequences under random push/pop
    /// interleavings — including same-instant bursts and pushes that
    /// land across every wheel level up to the overflow arena. This is
    /// the differential proof that makes the wheel a drop-in default:
    /// any ordering divergence would change golden digests.
    #[test]
    fn wheel_and_heap_agree_on_random_interleavings(
        ops in proptest::collection::vec((0u8..5, 0u64..1 << 38, 1u8..5), 1..300)
    ) {
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut now = 0u64;
        let mut next_event = 0u64;
        for &(op, offset, burst) in &ops {
            if op < 3 {
                // Push; op == 2 makes it a same-instant burst. Offsets up
                // to 2^38 µs overflow the wheel's 2^36 µs span, so the
                // overflow arena is exercised too.
                let t = SimTime::from_micros(now + offset);
                let n = if op == 2 { burst as u64 } else { 1 };
                for _ in 0..n {
                    wheel.push(t, next_event);
                    heap.push(t, next_event);
                    next_event += 1;
                }
            } else {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(w, h, "pop diverged mid-interleaving");
                if let Some((t, _)) = w {
                    now = t.as_micros();
                }
            }
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(w, h, "pop diverged during drain");
            if w.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// Batched popping (`drain_instant`, with an arbitrary halt-and-
    /// `restore` in the middle) yields exactly the heap reference's pop
    /// sequence: batching is a traversal optimisation, never a
    /// reordering.
    #[test]
    fn drain_instant_and_restore_match_the_heap_reference(
        times in proptest::collection::vec(0u64..2_000, 1..200),
        halt_after in 0usize..250
    ) {
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        for (seq, &t) in times.iter().enumerate() {
            // Coarse times force many same-instant batches.
            let t = SimTime::from_micros(t / 50);
            wheel.push(t, seq);
            heap.push(t, seq);
        }
        let mut batch = InstantBatch::new();
        let mut popped = 0usize;
        let mut halted = false;
        'outer: while let Some(time) = wheel.drain_instant(&mut batch) {
            while let Some(event) = batch.next_event() {
                let h = heap.pop();
                prop_assert_eq!(h, Some((time, event)), "batch diverged");
                popped += 1;
                if !halted && popped == halt_after {
                    // Simulate a mid-batch halt: the unconsumed tail goes
                    // back, then popping resumes from scratch.
                    halted = true;
                    wheel.restore(&mut batch);
                    continue 'outer;
                }
            }
        }
        prop_assert_eq!(heap.pop(), None);
        prop_assert!(wheel.is_empty());
    }

    /// Pre-sizing is invisible: a queue built with any `with_capacity`
    /// value pops exactly the same sequence as a default-built one, for
    /// both backends. (`build_simulation` pre-sizes from the configured
    /// population, so this is the kernel half of the digest-stability
    /// guarantee; the golden-digest tests pin the system half.)
    #[test]
    fn pre_sizing_never_changes_the_pop_sequence(
        times in proptest::collection::vec(0u64..100_000, 0..200),
        cap in 0usize..10_000
    ) {
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut sized = EventQueue::with_capacity_and_kind(cap, kind);
            let mut plain = EventQueue::with_kind(kind);
            for (seq, &t) in times.iter().enumerate() {
                sized.push(SimTime::from_micros(t), seq);
                plain.push(SimTime::from_micros(t), seq);
            }
            loop {
                let s = sized.pop();
                prop_assert_eq!(s, plain.pop());
                if s.is_none() {
                    break;
                }
            }
        }
    }

    /// Paper-shaped bimodal churn — dense sub-millisecond hops mixed
    /// with 1-in-16 think-time-like multi-second sleeps — drives the
    /// exact cascade storms that once inverted the 64× sweep. The packed
    /// wheel must still agree with the heap event-for-event, and its
    /// node arena must recycle: fresh growth equals peak liveness, never
    /// the churn volume.
    #[test]
    fn bimodal_storm_churn_matches_heap_and_recycles_nodes(
        seed in any::<u64>(),
        pending in 1usize..64,
        rounds in 1usize..500
    ) {
        let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut state = seed | 1;
        let mut next_us = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 16 == 0 {
                7_000_000 + (state >> 8) % 2_000_000
            } else {
                (state >> 8) % 1_000
            }
        };
        for seq in 0..pending {
            let t = SimTime::from_micros(next_us());
            wheel.push(t, seq);
            heap.push(t, seq);
        }
        for _ in 0..rounds {
            let w = wheel.pop();
            prop_assert_eq!(w, heap.pop(), "bimodal pop diverged");
            let Some((t, ev)) = w else { break };
            let t = t + SimDuration::from_micros(next_us());
            wheel.push(t, ev);
            heap.push(t, ev);
        }
        loop {
            let w = wheel.pop();
            prop_assert_eq!(w, heap.pop(), "bimodal drain diverged");
            if w.is_none() {
                break;
            }
        }
        let stats = wheel.wheel_stats().expect("wheel backend has stats");
        prop_assert_eq!(
            stats.node_allocs, stats.node_peak_live,
            "node arena grew past peak liveness — free list not recycling"
        );
    }

    /// SimTime/SimDuration arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrips(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(base);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur).saturating_since(t), dur);
    }

    /// saturating_since never panics and is zero when earlier >= later.
    #[test]
    fn saturating_since_is_total(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
        let d = ta.saturating_since(tb);
        if a <= b {
            prop_assert_eq!(d, SimDuration::ZERO);
        } else {
            prop_assert_eq!(d.as_micros(), a - b);
        }
    }

    /// Exponential samples are non-negative and finite for any seed/mean.
    #[test]
    fn exponential_is_well_formed(seed in any::<u64>(), mean_us in 1u64..10_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..16 {
            let d = exponential(&mut rng, SimDuration::from_micros(mean_us));
            prop_assert!(d.as_micros() < u64::MAX / 2);
        }
    }

    /// Uniform duration samples respect their bounds for any range.
    #[test]
    fn uniform_duration_in_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 0u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let lo_d = SimDuration::from_micros(lo);
        let hi_d = SimDuration::from_micros(lo + span);
        let d = uniform_duration(&mut rng, lo_d, hi_d);
        prop_assert!(d >= lo_d && d <= hi_d);
    }

    /// Named streams are independent of creation order.
    #[test]
    fn seed_streams_are_order_independent(master in any::<u64>()) {
        let mut s1 = SeedSequence::new(master);
        let mut s2 = SeedSequence::new(master);
        let mut a1 = s1.stream("alpha");
        let _ = s1.stream("beta");
        let _ = s2.stream("beta");
        let mut a2 = s2.stream("alpha");
        prop_assert_eq!(a1.next_u64(), a2.next_u64());
    }

    /// Generator output is uniform-ish: each of the 4 top bit-pairs of a
    /// u64 appears for some draw within a modest window (smoke-level
    /// sanity, not a statistical test).
    #[test]
    fn xoshiro_hits_all_quadrants(seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[(rng.next_u64() >> 62) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
